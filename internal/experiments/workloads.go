package experiments

import (
	"fmt"
	"math"

	"smapreduce/internal/core"
	"smapreduce/internal/metrics"
	"smapreduce/internal/mr"
	"smapreduce/internal/par"
	"smapreduce/internal/puma"
	"smapreduce/internal/sim"
	"smapreduce/internal/stats"
)

// ControllerComparison pits the paper's balance-factor slot manager
// against a model-free throughput hill climber on one map-heavy and
// one reduce-heavy job. The climber should hold its own where only the
// thrashing point matters (map-heavy) and give ground where the
// map/shuffle balance matters (reduce-heavy) — isolating the value of
// the paper's model.
type ControllerRow struct {
	Benchmark  string
	Controller string
	Exec       float64
}

// ControllerResult holds the comparison matrix.
type ControllerResult struct {
	Rows []ControllerRow
}

// Table renders the matrix.
func (r *ControllerResult) Table() *metrics.Table {
	t := metrics.NewTable("Balance-factor manager vs model-free hill climber",
		"benchmark", "controller", "exec s")
	for _, row := range r.Rows {
		t.AddRowf(row.Benchmark, row.Controller, row.Exec)
	}
	return t
}

// Get returns the exec time for (bench, controller), or -1.
func (r *ControllerResult) Get(bench, controller string) float64 {
	for _, row := range r.Rows {
		if row.Benchmark == bench && row.Controller == controller {
			return row.Exec
		}
	}
	return -1
}

// ControllerComparison runs the matrix.
func ControllerComparison(cfg Config) (*ControllerResult, error) {
	cfg = cfg.normalize()
	res := &ControllerResult{}
	for _, bench := range []string{"histogram-ratings", "terasort"} {
		spec := cfg.spec(bench, 60)

		static, err := core.Run(core.EngineHadoopV1, core.Options{Cluster: cfg.cluster()}, spec)
		if err != nil {
			return nil, fmt.Errorf("controller static %s: %w", bench, err)
		}
		res.Rows = append(res.Rows, ControllerRow{bench, "static (HadoopV1)", static.Jobs[0].ExecutionTime()})

		smr, err := core.Run(core.EngineSMapReduce, core.Options{Cluster: cfg.cluster()}, spec)
		if err != nil {
			return nil, fmt.Errorf("controller smr %s: %w", bench, err)
		}
		res.Rows = append(res.Rows, ControllerRow{bench, "slot manager (paper)", smr.Jobs[0].ExecutionTime()})

		hcJobs, err := core.RunWithController(core.NewHillClimber(), cfg.cluster(), spec)
		if err != nil {
			return nil, fmt.Errorf("controller hc %s: %w", bench, err)
		}
		res.Rows = append(res.Rows, ControllerRow{bench, "hill climber (model-free)", hcJobs[0].ExecutionTime()})
	}
	return res, nil
}

// SkewRow is one (skew, engine) outcome.
type SkewRow struct {
	Skew   float64
	Engine core.Engine
	Exec   float64
}

// SkewResult holds the partition-skew sensitivity sweep.
type SkewResult struct {
	Rows []SkewRow
}

// Table renders the sweep.
func (r *SkewResult) Table() *metrics.Table {
	t := metrics.NewTable("Partition skew sensitivity (terasort)", "zipf s", "engine", "exec s")
	for _, row := range r.Rows {
		t.AddRowf(row.Skew, row.Engine.String(), row.Exec)
	}
	return t
}

// Get returns exec time for (skew, engine), or -1.
func (r *SkewResult) Get(skew float64, engine core.Engine) float64 {
	for _, row := range r.Rows {
		if row.Skew == skew && row.Engine == engine {
			return row.Exec
		}
	}
	return -1
}

// SkewSensitivity sweeps reducer hot-key skew on terasort. The paper
// assumes uniformly distributed data (§VII); this measures how both
// systems degrade when that assumption breaks.
func SkewSensitivity(cfg Config) (*SkewResult, error) {
	cfg = cfg.normalize()
	skews := []float64{0, 0.5, 1.0}
	engines := []core.Engine{core.EngineHadoopV1, core.EngineSMapReduce}
	rows := make([]SkewRow, len(skews)*len(engines))
	err := par.For(len(rows), func(i int) error {
		skew := skews[i/len(engines)]
		engine := engines[i%len(engines)]
		spec := cfg.spec("terasort", 40)
		spec.PartitionSkew = skew
		r, err := core.Run(engine, core.Options{Cluster: cfg.cluster()}, spec)
		if err != nil {
			return fmt.Errorf("skew %.1f/%v: %w", skew, engine, err)
		}
		rows[i] = SkewRow{Skew: skew, Engine: engine, Exec: r.Jobs[0].ExecutionTime()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &SkewResult{Rows: rows}, nil
}

// TraceRow is one engine's outcome on the generated trace.
type TraceRow struct {
	Engine   core.Engine
	MeanExec float64
	P95Exec  float64
	Makespan float64
}

// TraceResult holds the cluster-trace comparison.
type TraceResult struct {
	Jobs int
	Rows []TraceRow
}

// Table renders the comparison.
func (r *TraceResult) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Synthetic cluster trace (%d mixed jobs, Poisson arrivals)", r.Jobs),
		"engine", "mean exec s", "p95 exec s", "makespan s")
	for _, row := range r.Rows {
		t.AddRowf(row.Engine.String(), row.MeanExec, row.P95Exec, row.Makespan)
	}
	return t
}

// Get returns the row for an engine; ok reports presence.
func (r *TraceResult) Get(engine core.Engine) (TraceRow, bool) {
	for _, row := range r.Rows {
		if row.Engine == engine {
			return row, true
		}
	}
	return TraceRow{}, false
}

// traceMix is the benchmark population of the synthetic trace, shaped
// like a production mix: mostly scans and aggregations, some heavy
// sorts.
var traceMix = []struct {
	bench  string
	weight float64
}{
	{"grep", 0.20},
	{"histogram-ratings", 0.20},
	{"wordcount", 0.20},
	{"inverted-index", 0.20},
	{"term-vector", 0.10},
	{"terasort", 0.10},
}

// GenerateTrace builds a deterministic synthetic job trace: Poisson
// arrivals with the given mean gap, benchmarks drawn from traceMix,
// and sizes log-uniform in [minGB, maxGB].
func GenerateTrace(seed uint64, jobs int, meanGapS, minGB, maxGB float64, reduces int) []mr.JobSpec {
	rng := sim.NewRand(seed)
	specs := make([]mr.JobSpec, 0, jobs)
	at := 0.0
	for i := 0; i < jobs; i++ {
		// Exponential inter-arrival.
		at += -meanGapS * math.Log(1-rng.Float64())
		// Weighted benchmark draw.
		u := rng.Float64()
		bench := traceMix[len(traceMix)-1].bench
		acc := 0.0
		for _, m := range traceMix {
			acc += m.weight
			if u < acc {
				bench = m.bench
				break
			}
		}
		gb := minGB * math.Exp(rng.Float64()*math.Log(maxGB/minGB))
		specs = append(specs, mr.JobSpec{
			Name:     fmt.Sprintf("%s-%02d", bench, i),
			Profile:  puma.MustGet(bench),
			InputMB:  gb * 1024,
			Reduces:  reduces,
			SubmitAt: at,
		})
	}
	return specs
}

// TraceWorkload replays one generated trace on every engine and
// reports latency statistics and makespan — the shared-cluster view a
// week of production looks like, compressed.
func TraceWorkload(cfg Config) (*TraceResult, error) {
	cfg = cfg.normalize()
	const jobs = 12
	res := &TraceResult{Jobs: jobs}
	for _, engine := range core.Engines() {
		specs := GenerateTrace(cfg.Seed, jobs, 30, 5*cfg.Scale, 40*cfg.Scale, cfg.Reduces)
		r, err := core.Run(engine, core.Options{Cluster: cfg.cluster()}, specs...)
		if err != nil {
			return nil, fmt.Errorf("trace %v: %w", engine, err)
		}
		execs := make([]float64, 0, len(r.Jobs))
		for _, j := range r.Jobs {
			execs = append(execs, j.ExecutionTime())
		}
		res.Rows = append(res.Rows, TraceRow{
			Engine:   engine,
			MeanExec: stats.Mean(execs),
			P95Exec:  stats.Percentile(execs, 95),
			Makespan: r.LastFinish(),
		})
	}
	return res, nil
}
