package experiments

import (
	"testing"

	"smapreduce/internal/core"
)

func TestOversubscription(t *testing.T) {
	shape(t)
	r, err := Oversubscription(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, engine := range []core.Engine{core.EngineHadoopV1, core.EngineSMapReduce} {
		nb := r.Get("non-blocking", engine)
		two := r.Get("2:1", engine)
		four := r.Get("4:1", engine)
		if nb <= 0 || two <= 0 || four <= 0 {
			t.Fatalf("%v missing fabric arms", engine)
		}
		// Terasort's cross-rack shuffle must slow down monotonically as
		// the uplink shrinks.
		if !(nb <= two+1e-9 && two <= four+1e-9) {
			t.Errorf("%v not monotone under oversubscription: %v / %v / %v", engine, nb, two, four)
		}
		if four <= nb {
			t.Errorf("%v: 4:1 fabric (%v) not slower than non-blocking (%v)", engine, four, nb)
		}
	}
	// SMapReduce never loses to V1 by a meaningful margin on any fabric.
	for _, ratio := range []string{"non-blocking", "2:1", "4:1"} {
		if smr, v1 := r.Get(ratio, core.EngineSMapReduce), r.Get(ratio, core.EngineHadoopV1); smr > 1.1*v1 {
			t.Errorf("SMR (%v) lost to V1 (%v) on %s fabric", smr, v1, ratio)
		}
	}
}

func TestOracleGap(t *testing.T) {
	shape(t)
	r, err := OracleGap(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	def := r.Get("HadoopV1 default (3 slots)")
	oracle := r.SweepTimes[r.BestSlots]
	smr := r.Get("SMapReduce (starts at 3)")
	if def <= 0 || oracle <= 0 || smr <= 0 {
		t.Fatal("missing arms")
	}
	// The oracle is the sweep's minimum by construction.
	for slots, exec := range r.SweepTimes {
		if exec < oracle-1e-9 {
			t.Fatalf("sweep[%d]=%v below recorded oracle %v", slots, exec, oracle)
		}
	}
	// The interesting claims: SMapReduce beats the default static
	// config decisively and lands within 50% of the oracle despite
	// starting misconfigured and paying its learning curve.
	if smr >= def {
		t.Errorf("SMR (%v) did not beat the default static config (%v)", smr, def)
	}
	if smr > 1.5*oracle {
		t.Errorf("SMR (%v) too far from the oracle (%v)", smr, oracle)
	}
	if r.BestSlots <= 3 {
		t.Errorf("oracle slots = %d; expected the map-heavy optimum above the default 3", r.BestSlots)
	}
}
