package experiments

import "testing"

// TestFiguresHeapSchedDifferential pins the scheduler backend on the
// paper figures: running the figure workloads with SMR_HEAP_SCHED=1
// (heap-only event scheduling, read at cluster construction) must
// reproduce the timing-wheel tables byte for byte.
func TestFiguresHeapSchedDifferential(t *testing.T) {
	cfg := Config{Scale: 0.05, Workers: 8, Reduces: 8, Seed: 1}

	w3, err := Figure3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w4, err := Figure4(cfg)
	if err != nil {
		t.Fatal(err)
	}

	t.Setenv("SMR_HEAP_SCHED", "1")
	h3, err := Figure3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h4, err := Figure4(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := h3.Table().String(), w3.Table().String(); got != want {
		t.Fatalf("Figure 3 diverges between wheel and heap-only scheduler:\nwheel:\n%s\nheap:\n%s", want, got)
	}
	if got, want := h4.Table().String(), w4.Table().String(); got != want {
		t.Fatalf("Figure 4 diverges between wheel and heap-only scheduler:\nwheel:\n%s\nheap:\n%s", want, got)
	}
}
