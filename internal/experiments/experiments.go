// Package experiments regenerates every figure in the paper's
// evaluation (§V). Each FigureN function runs the corresponding
// workload matrix on the simulated cluster and returns typed rows plus
// a rendered table, so cmd/smrbench, bench_test.go and EXPERIMENTS.md
// all draw from the same code.
//
// The paper has no numbered tables; Figures 1 and 3–9 are the entire
// quantitative evaluation (Figure 2 is the architecture diagram).
package experiments

import (
	"fmt"

	"smapreduce/internal/core"
	"smapreduce/internal/metrics"
	"smapreduce/internal/mr"
	"smapreduce/internal/par"
	"smapreduce/internal/puma"
)

// Config scales the experiment suite. The zero value is replaced by
// Default(): paper-shaped sizes that run in seconds of wall time.
type Config struct {
	// Scale multiplies every input size. 1.0 reproduces paper-scale
	// datasets (50–250 GB); tests use smaller values.
	Scale float64
	// Workers is the task tracker count (paper: 16).
	Workers int
	// Reduces is the reduce task count (paper: 30).
	Reduces int
	// Seed drives all stochastic components.
	Seed uint64
	// Trials averages each figure's metrics over this many runs with
	// consecutive seeds — the paper reports "the average values of the
	// data collected from two trials" (§V). 0 or 1 runs once.
	Trials int
}

// Default returns the paper's workbench configuration.
func Default() Config {
	return Config{Scale: 1, Workers: 16, Reduces: 30, Seed: 1}
}

// normalize fills zero fields from Default.
func (c Config) normalize() Config {
	d := Default()
	if c.Scale == 0 {
		c.Scale = d.Scale
	}
	if c.Workers == 0 {
		c.Workers = d.Workers
	}
	if c.Reduces == 0 {
		c.Reduces = d.Reduces
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.Trials <= 0 {
		c.Trials = 1
	}
	return c
}

// averageTrials runs fn once per trial with consecutive seeds and
// folds each run's keyed metrics together with mergeInto. The caller's
// result from the first trial is the canvas; subsequent trials stream
// their metric values into it through the accumulate callback.
func averageTrials(cfg Config, fn func(trial Config) (map[string]float64, error)) (map[string]float64, error) {
	sums := make(map[string]float64)
	for trial := 0; trial < cfg.Trials; trial++ {
		t := cfg
		t.Seed = cfg.Seed + uint64(trial)
		t.Trials = 1
		vals, err := fn(t)
		if err != nil {
			return nil, err
		}
		for k, v := range vals {
			sums[k] += v
		}
	}
	for k := range sums {
		sums[k] /= float64(cfg.Trials)
	}
	return sums, nil
}

// cluster builds the base cluster config for an experiment.
func (c Config) cluster() mr.Config {
	cfg := mr.DefaultConfig()
	cfg.Workers = c.Workers
	cfg.Net.Nodes = c.Workers
	cfg.Seed = c.Seed
	return cfg
}

// spec builds a job spec at the experiment's scale.
func (c Config) spec(bench string, gb float64) mr.JobSpec {
	return mr.JobSpec{
		Name:    bench,
		Profile: puma.MustGet(bench),
		InputMB: gb * 1024 * c.Scale,
		Reduces: c.Reduces,
	}
}

// runOne executes a single job on one engine and returns it.
func runOne(engine core.Engine, cluster mr.Config, spec mr.JobSpec) (*mr.Job, error) {
	res, err := core.Run(engine, core.Options{Cluster: cluster}, spec)
	if err != nil {
		return nil, err
	}
	return res.Jobs[0], nil
}

// ---------------------------------------------------------------------------
// Figure 1 — thrashing curves.

// Fig1Point is one (benchmark, slots) sample of the thrashing curve.
type Fig1Point struct {
	Benchmark     string
	MapSlots      int
	ThroughputMBs float64 // cluster map throughput: input MB / map time
}

// Fig1Result holds the Figure 1 sweep.
type Fig1Result struct {
	Points []Fig1Point
}

// Figure1 reproduces Fig. 1: map throughput versus the per-node map
// slot count for Terasort, TermVector and Grep on static HadoopV1
// slots. The curves must rise, peak at the benchmark-specific
// thrashing point, and fall beyond it.
func Figure1(cfg Config) (*Fig1Result, error) {
	cfg = cfg.normalize()
	benches := []string{"terasort", "term-vector", "grep"}
	const maxSlots = 10
	points := make([]Fig1Point, len(benches)*maxSlots)
	err := par.For(len(points), func(i int) error {
		bench := benches[i/maxSlots]
		slots := i%maxSlots + 1
		cluster := cfg.cluster()
		cluster.MapSlots = slots
		cluster.MaxMapSlots = slots
		spec := cfg.spec(bench, 48)
		j, err := runOne(core.EngineHadoopV1, cluster, spec)
		if err != nil {
			return fmt.Errorf("figure1 %s/%d: %w", bench, slots, err)
		}
		points[i] = Fig1Point{Benchmark: bench, MapSlots: slots, ThroughputMBs: spec.InputMB / j.MapTime()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig1Result{Points: points}, nil
}

// Peak returns the slot count with maximum throughput for a benchmark.
func (r *Fig1Result) Peak(bench string) int {
	best, bestv := 0, 0.0
	for _, p := range r.Points {
		if p.Benchmark == bench && p.ThroughputMBs > bestv {
			best, bestv = p.MapSlots, p.ThroughputMBs
		}
	}
	return best
}

// Table renders the sweep.
func (r *Fig1Result) Table() *metrics.Table {
	t := metrics.NewTable("Figure 1 — map throughput vs map slots per node (HadoopV1)",
		"benchmark", "map slots", "throughput MB/s")
	for _, p := range r.Points {
		t.AddRowf(p.Benchmark, p.MapSlots, p.ThroughputMBs)
	}
	return t
}

// ---------------------------------------------------------------------------
// Figure 3 — execution time per benchmark on the three engines.

// Fig3Benchmarks is the benchmark set plotted in Fig. 3.
var Fig3Benchmarks = []string{
	"histogram-movies", "histogram-ratings", "grep", "classification",
	"wordcount", "term-vector", "inverted-index", "terasort",
}

// Fig3Row is one (benchmark, engine) cell.
type Fig3Row struct {
	Benchmark     string
	Engine        core.Engine
	MapTime       float64
	ReduceTime    float64
	ExecTime      float64
	ThroughputMBs float64
}

// Fig3Result holds the benchmark × engine matrix.
type Fig3Result struct {
	Rows []Fig3Row
}

// Figure3 reproduces Fig. 3: per-benchmark map time and reduce time on
// HadoopV1, YARN and SMapReduce with the paper's 3 map + 2 reduce
// initial slots.
func Figure3(cfg Config) (*Fig3Result, error) {
	cfg = cfg.normalize()
	if cfg.Trials > 1 {
		return figure3Averaged(cfg)
	}
	engines := core.Engines()
	rows := make([]Fig3Row, len(Fig3Benchmarks)*len(engines))
	err := par.For(len(rows), func(i int) error {
		bench := Fig3Benchmarks[i/len(engines)]
		engine := engines[i%len(engines)]
		j, err := runOne(engine, cfg.cluster(), cfg.spec(bench, 100))
		if err != nil {
			return fmt.Errorf("figure3 %s/%v: %w", bench, engine, err)
		}
		rows[i] = Fig3Row{
			Benchmark:     bench,
			Engine:        engine,
			MapTime:       j.MapTime(),
			ReduceTime:    j.ReduceTime(),
			ExecTime:      j.ExecutionTime(),
			ThroughputMBs: j.ThroughputMBps(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig3Result{Rows: rows}, nil
}

// Get returns the row for (bench, engine); ok is false if absent.
func (r *Fig3Result) Get(bench string, engine core.Engine) (Fig3Row, bool) {
	for _, row := range r.Rows {
		if row.Benchmark == bench && row.Engine == engine {
			return row, true
		}
	}
	return Fig3Row{}, false
}

// SpeedupOver returns SMapReduce's throughput gain over the baseline
// engine for a benchmark (0.40 = +40%).
func (r *Fig3Result) SpeedupOver(bench string, baseline core.Engine) float64 {
	smr, ok1 := r.Get(bench, core.EngineSMapReduce)
	base, ok2 := r.Get(bench, baseline)
	if !ok1 || !ok2 {
		return 0
	}
	return smr.ThroughputMBs/base.ThroughputMBs - 1
}

// Table renders the matrix.
func (r *Fig3Result) Table() *metrics.Table {
	t := metrics.NewTable("Figure 3 — execution time per benchmark",
		"benchmark", "engine", "map s", "reduce s", "exec s", "MB/s")
	for _, row := range r.Rows {
		t.AddRowf(row.Benchmark, row.Engine.String(), row.MapTime, row.ReduceTime, row.ExecTime, row.ThroughputMBs)
	}
	return t
}

// ---------------------------------------------------------------------------
// Figure 4 — progress over time.

// Fig4Result holds one progress curve per engine for HistogramMovie.
type Fig4Result struct {
	Curves map[string][]metrics.Point // engine name → total-progress samples (0..200%)
	End    float64                    // latest finish time, for resampling
}

// Figure4 reproduces Fig. 4: total progress percentage (map + reduce,
// 0–200%) over time for the HistogramMovie benchmark on each engine.
func Figure4(cfg Config) (*Fig4Result, error) {
	cfg = cfg.normalize()
	res := &Fig4Result{Curves: make(map[string][]metrics.Point)}
	for _, engine := range core.Engines() {
		j, err := runOne(engine, cfg.cluster(), cfg.spec("histogram-movies", 100))
		if err != nil {
			return nil, fmt.Errorf("figure4 %v: %w", engine, err)
		}
		res.Curves[engine.String()] = j.Progress.Total.Points()
		if j.FinishedAt > res.End {
			res.End = j.FinishedAt
		}
	}
	return res, nil
}

// CrossingTime returns when an engine's curve first reaches pct.
func (r *Fig4Result) CrossingTime(engine string, pct float64) float64 {
	for _, p := range r.Curves[engine] {
		if p.V >= pct {
			return p.T
		}
	}
	return -1
}

// Table renders the curves resampled on a common grid.
func (r *Fig4Result) Table() *metrics.Table {
	t := metrics.NewTable("Figure 4 — HistogramMovie progress over time (% of 200)",
		"t s", "HadoopV1", "YARN", "SMapReduce")
	step := r.End / 25
	if step <= 0 {
		step = 1
	}
	at := func(pts []metrics.Point, x float64) float64 {
		v := 0.0
		for _, p := range pts {
			if p.T <= x {
				v = p.V
			}
		}
		return v
	}
	for x := 0.0; x <= r.End+1e-9; x += step {
		t.AddRowf(x,
			at(r.Curves["HadoopV1"], x),
			at(r.Curves["YARN"], x),
			at(r.Curves["SMapReduce"], x))
	}
	return t
}

// ---------------------------------------------------------------------------
// Figure 5 — map time under different initial map slot configurations.

// Fig5Row is one (slots, engine) map time.
type Fig5Row struct {
	MapSlots int
	Engine   core.Engine
	MapTime  float64
}

// Fig5Result holds the sweep.
type Fig5Result struct {
	Rows []Fig5Row
}

// Figure5 reproduces Fig. 5: HistogramRating map time with initial map
// slots 1..8 on the three engines. SMapReduce should win at bad
// configurations and match the baselines at their optimum.
func Figure5(cfg Config) (*Fig5Result, error) {
	cfg = cfg.normalize()
	if cfg.Trials > 1 {
		return figure5Averaged(cfg)
	}
	engines := core.Engines()
	rows := make([]Fig5Row, 8*len(engines))
	err := par.For(len(rows), func(i int) error {
		slots := i/len(engines) + 1
		engine := engines[i%len(engines)]
		cluster := cfg.cluster()
		cluster.MapSlots = slots
		if engine != core.EngineSMapReduce {
			// Baselines are pinned to the configured slots; the
			// managed engine may move off them.
			cluster.MaxMapSlots = slots
		}
		j, err := runOne(engine, cluster, cfg.spec("histogram-ratings", 60))
		if err != nil {
			return fmt.Errorf("figure5 %d/%v: %w", slots, engine, err)
		}
		rows[i] = Fig5Row{MapSlots: slots, Engine: engine, MapTime: j.MapTime()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig5Result{Rows: rows}, nil
}

// Get returns the map time for (slots, engine), or -1.
func (r *Fig5Result) Get(slots int, engine core.Engine) float64 {
	for _, row := range r.Rows {
		if row.MapSlots == slots && row.Engine == engine {
			return row.MapTime
		}
	}
	return -1
}

// Table renders the sweep.
func (r *Fig5Result) Table() *metrics.Table {
	t := metrics.NewTable("Figure 5 — HistogramRating map time vs initial map slots",
		"map slots", "HadoopV1 s", "YARN s", "SMapReduce s")
	for slots := 1; slots <= 8; slots++ {
		t.AddRowf(slots,
			r.Get(slots, core.EngineHadoopV1),
			r.Get(slots, core.EngineYARN),
			r.Get(slots, core.EngineSMapReduce))
	}
	return t
}

// ---------------------------------------------------------------------------
// Figure 6 — throughput vs input size.

// Fig6Row is one (inputGB, engine) throughput sample.
type Fig6Row struct {
	InputGB       float64
	Engine        core.Engine
	ThroughputMBs float64
}

// Fig6Result holds the scaling sweep.
type Fig6Result struct {
	Rows []Fig6Row
}

// Figure6 reproduces Fig. 6: HistogramRating job throughput at input
// sizes 50–250 GB. SMapReduce's advantage must grow with input size
// (more time to adapt), reaching ≈2× HadoopV1 at the largest size.
func Figure6(cfg Config) (*Fig6Result, error) {
	cfg = cfg.normalize()
	if cfg.Trials > 1 {
		return figure6Averaged(cfg)
	}
	sizes := []float64{50, 100, 150, 200, 250}
	engines := core.Engines()
	rows := make([]Fig6Row, len(sizes)*len(engines))
	err := par.For(len(rows), func(i int) error {
		gb := sizes[i/len(engines)]
		engine := engines[i%len(engines)]
		j, err := runOne(engine, cfg.cluster(), cfg.spec("histogram-ratings", gb))
		if err != nil {
			return fmt.Errorf("figure6 %.0f/%v: %w", gb, engine, err)
		}
		rows[i] = Fig6Row{InputGB: gb, Engine: engine, ThroughputMBs: j.ThroughputMBps()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig6Result{Rows: rows}, nil
}

// Get returns throughput for (gb, engine), or -1.
func (r *Fig6Result) Get(gb float64, engine core.Engine) float64 {
	for _, row := range r.Rows {
		if row.InputGB == gb && row.Engine == engine {
			return row.ThroughputMBs
		}
	}
	return -1
}

// Table renders the sweep.
func (r *Fig6Result) Table() *metrics.Table {
	t := metrics.NewTable("Figure 6 — HistogramRating throughput vs input size",
		"input GB", "HadoopV1 MB/s", "YARN MB/s", "SMapReduce MB/s", "SMR/V1", "SMR/YARN")
	for _, gb := range []float64{50, 100, 150, 200, 250} {
		v1 := r.Get(gb, core.EngineHadoopV1)
		y := r.Get(gb, core.EngineYARN)
		s := r.Get(gb, core.EngineSMapReduce)
		t.AddRowf(gb, v1, y, s, s/v1, s/y)
	}
	return t
}

// ---------------------------------------------------------------------------
// Figure 7 — ablations: thrashing detection and slow start.

// Fig7Variant names one ablation arm.
type Fig7Variant string

const (
	VariantHadoopV1    Fig7Variant = "HadoopV1"
	VariantYARN        Fig7Variant = "YARN"
	VariantFull        Fig7Variant = "SMapReduce"
	VariantNoThrashDet Fig7Variant = "SMapReduce w/o thrash detection"
	VariantNoSlowStart Fig7Variant = "SMapReduce w/o slow start"
)

// Fig7Row is one (benchmark, variant) map time.
type Fig7Row struct {
	Benchmark string
	Variant   Fig7Variant
	MapTime   float64
}

// Fig7Result holds the ablation matrix.
type Fig7Result struct {
	Rows []Fig7Row
}

// Fig7Benchmarks is the two-benchmark set of Fig. 7.
var Fig7Benchmarks = []string{"histogram-movies", "inverted-index"}

// Figure7 reproduces Fig. 7: map times with and without thrashing
// detection and with and without the slow-start policy. Without
// detection the manager overshoots the thrashing point and map time
// must exceed both baselines.
func Figure7(cfg Config) (*Fig7Result, error) {
	cfg = cfg.normalize()
	res := &Fig7Result{}
	type arm struct {
		variant Fig7Variant
		engine  core.Engine
		sm      core.SlotManagerConfig
	}
	arms := []arm{
		{VariantHadoopV1, core.EngineHadoopV1, core.SlotManagerConfig{}},
		{VariantYARN, core.EngineYARN, core.SlotManagerConfig{}},
		{VariantFull, core.EngineSMapReduce, core.SlotManagerConfig{}},
		{VariantNoThrashDet, core.EngineSMapReduce, core.SlotManagerConfig{DisableThrashDetection: true}},
		{VariantNoSlowStart, core.EngineSMapReduce, core.SlotManagerConfig{DisableSlowStart: true}},
	}
	// Sizes are chosen so the workload outlives the slot ramp: the
	// no-detection arm must have time to climb past the thrashing
	// point, or the ablation is invisible.
	sizes := map[string]float64{"histogram-movies": 250, "inverted-index": 100}
	rows := make([]Fig7Row, len(Fig7Benchmarks)*len(arms))
	err := par.For(len(rows), func(i int) error {
		bench := Fig7Benchmarks[i/len(arms)]
		a := arms[i%len(arms)]
		r, err := core.Run(a.engine, core.Options{Cluster: cfg.cluster(), SlotManager: a.sm}, cfg.spec(bench, sizes[bench]))
		if err != nil {
			return fmt.Errorf("figure7 %s/%s: %w", bench, a.variant, err)
		}
		rows[i] = Fig7Row{Benchmark: bench, Variant: a.variant, MapTime: r.Jobs[0].MapTime()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// Get returns the map time for (bench, variant), or -1.
func (r *Fig7Result) Get(bench string, v Fig7Variant) float64 {
	for _, row := range r.Rows {
		if row.Benchmark == bench && row.Variant == v {
			return row.MapTime
		}
	}
	return -1
}

// Table renders the ablations.
func (r *Fig7Result) Table() *metrics.Table {
	t := metrics.NewTable("Figure 7 — map time with/without thrashing detection and slow start",
		"benchmark", "variant", "map s")
	for _, row := range r.Rows {
		t.AddRowf(row.Benchmark, string(row.Variant), row.MapTime)
	}
	return t
}

// ---------------------------------------------------------------------------
// Figures 8 and 9 — multiple concurrent jobs.

// MultiJobRow is one engine's outcome on the 4-job workload.
type MultiJobRow struct {
	Engine     core.Engine
	MeanExec   float64
	LastFinish float64
}

// MultiJobResult holds one engine row per system.
type MultiJobResult struct {
	Benchmark string
	Rows      []MultiJobRow
}

// multiJob runs 4 identical jobs submitted 5 s apart (the paper's
// synthetic multi-job workload) on every engine.
func multiJob(cfg Config, bench string, gbEach float64) (*MultiJobResult, error) {
	cfg = cfg.normalize()
	if cfg.Trials > 1 {
		return multiJobAveraged(cfg, bench, gbEach)
	}
	res := &MultiJobResult{Benchmark: bench}
	for _, engine := range core.Engines() {
		specs := make([]mr.JobSpec, 4)
		for i := range specs {
			specs[i] = cfg.spec(bench, gbEach)
			specs[i].Name = fmt.Sprintf("%s-%d", bench, i+1)
			specs[i].SubmitAt = float64(i) * 5
		}
		r, err := core.Run(engine, core.Options{Cluster: cfg.cluster()}, specs...)
		if err != nil {
			return nil, fmt.Errorf("multijob %s/%v: %w", bench, engine, err)
		}
		res.Rows = append(res.Rows, MultiJobRow{
			Engine:     engine,
			MeanExec:   r.MeanExecutionTime(),
			LastFinish: r.LastFinish(),
		})
	}
	return res, nil
}

// Figure8 reproduces Fig. 8: four concurrent Grep jobs.
func Figure8(cfg Config) (*MultiJobResult, error) { return multiJob(cfg, "grep", 40) }

// Figure9 reproduces Fig. 9: four concurrent InvertedIndex jobs.
func Figure9(cfg Config) (*MultiJobResult, error) { return multiJob(cfg, "inverted-index", 40) }

// Get returns the row for an engine; ok is false if absent.
func (r *MultiJobResult) Get(engine core.Engine) (MultiJobRow, bool) {
	for _, row := range r.Rows {
		if row.Engine == engine {
			return row, true
		}
	}
	return MultiJobRow{}, false
}

// Table renders the comparison.
func (r *MultiJobResult) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Figures 8/9 — 4 concurrent %s jobs (5 s stagger)", r.Benchmark),
		"engine", "mean exec s", "last finish s")
	for _, row := range r.Rows {
		t.AddRowf(row.Engine.String(), row.MeanExec, row.LastFinish)
	}
	return t
}

// figure3Averaged runs Figure 3 per trial and averages every metric.
func figure3Averaged(cfg Config) (*Fig3Result, error) {
	var proto *Fig3Result
	key := func(r Fig3Row, metric string) string {
		return fmt.Sprintf("%s/%v/%s", r.Benchmark, r.Engine, metric)
	}
	sums, err := averageTrials(cfg, func(t Config) (map[string]float64, error) {
		r, err := Figure3(t)
		if err != nil {
			return nil, err
		}
		if proto == nil {
			proto = r
		}
		vals := make(map[string]float64, len(r.Rows)*4)
		for _, row := range r.Rows {
			vals[key(row, "map")] = row.MapTime
			vals[key(row, "reduce")] = row.ReduceTime
			vals[key(row, "exec")] = row.ExecTime
			vals[key(row, "thr")] = row.ThroughputMBs
		}
		return vals, nil
	})
	if err != nil {
		return nil, err
	}
	for i := range proto.Rows {
		row := &proto.Rows[i]
		row.MapTime = sums[key(*row, "map")]
		row.ReduceTime = sums[key(*row, "reduce")]
		row.ExecTime = sums[key(*row, "exec")]
		row.ThroughputMBs = sums[key(*row, "thr")]
	}
	return proto, nil
}

// figure5Averaged averages the Figure 5 map times over trials.
func figure5Averaged(cfg Config) (*Fig5Result, error) {
	var proto *Fig5Result
	key := func(r Fig5Row) string { return fmt.Sprintf("%d/%v", r.MapSlots, r.Engine) }
	sums, err := averageTrials(cfg, func(t Config) (map[string]float64, error) {
		r, err := Figure5(t)
		if err != nil {
			return nil, err
		}
		if proto == nil {
			proto = r
		}
		vals := make(map[string]float64, len(r.Rows))
		for _, row := range r.Rows {
			vals[key(row)] = row.MapTime
		}
		return vals, nil
	})
	if err != nil {
		return nil, err
	}
	for i := range proto.Rows {
		proto.Rows[i].MapTime = sums[key(proto.Rows[i])]
	}
	return proto, nil
}

// figure6Averaged averages the Figure 6 throughputs over trials.
func figure6Averaged(cfg Config) (*Fig6Result, error) {
	var proto *Fig6Result
	key := func(r Fig6Row) string { return fmt.Sprintf("%.0f/%v", r.InputGB, r.Engine) }
	sums, err := averageTrials(cfg, func(t Config) (map[string]float64, error) {
		r, err := Figure6(t)
		if err != nil {
			return nil, err
		}
		if proto == nil {
			proto = r
		}
		vals := make(map[string]float64, len(r.Rows))
		for _, row := range r.Rows {
			vals[key(row)] = row.ThroughputMBs
		}
		return vals, nil
	})
	if err != nil {
		return nil, err
	}
	for i := range proto.Rows {
		proto.Rows[i].ThroughputMBs = sums[key(proto.Rows[i])]
	}
	return proto, nil
}

// multiJobAveraged averages the multi-job metrics over trials.
func multiJobAveraged(cfg Config, bench string, gbEach float64) (*MultiJobResult, error) {
	var proto *MultiJobResult
	sums, err := averageTrials(cfg, func(t Config) (map[string]float64, error) {
		r, err := multiJob(t, bench, gbEach)
		if err != nil {
			return nil, err
		}
		if proto == nil {
			proto = r
		}
		vals := make(map[string]float64, len(r.Rows)*2)
		for _, row := range r.Rows {
			vals[row.Engine.String()+"/mean"] = row.MeanExec
			vals[row.Engine.String()+"/last"] = row.LastFinish
		}
		return vals, nil
	})
	if err != nil {
		return nil, err
	}
	for i := range proto.Rows {
		proto.Rows[i].MeanExec = sums[proto.Rows[i].Engine.String()+"/mean"]
		proto.Rows[i].LastFinish = sums[proto.Rows[i].Engine.String()+"/last"]
	}
	return proto, nil
}
