package experiments

import (
	"fmt"

	"smapreduce/internal/core"
	"smapreduce/internal/metrics"
)

// Oversubscription measures how a reduce-heavy job degrades as the
// rack uplinks shrink from non-blocking to 4:1 oversubscribed, and
// whether the slot manager's advantage survives. The paper's testbed
// has a single switch; this probes the design one fabric generation
// later.
type OversubRow struct {
	Ratio  string // "non-blocking", "2:1", "4:1"
	Engine core.Engine
	Exec   float64
}

// OversubResult holds the fabric sweep.
type OversubResult struct {
	Rows []OversubRow
}

// Table renders the sweep.
func (r *OversubResult) Table() *metrics.Table {
	t := metrics.NewTable("Rack oversubscription (terasort)", "fabric", "engine", "exec s")
	for _, row := range r.Rows {
		t.AddRowf(row.Ratio, row.Engine.String(), row.Exec)
	}
	return t
}

// Get returns exec time for (ratio, engine), or -1.
func (r *OversubResult) Get(ratio string, engine core.Engine) float64 {
	for _, row := range r.Rows {
		if row.Ratio == ratio && row.Engine == engine {
			return row.Exec
		}
	}
	return -1
}

// Oversubscription runs terasort across three fabric generations.
func Oversubscription(cfg Config) (*OversubResult, error) {
	cfg = cfg.normalize()
	res := &OversubResult{}
	// A rack of 8 nodes can source 8×117 ≈ 936 MB/s; a 2:1 uplink
	// carries half of that, 4:1 a quarter.
	fabrics := []struct {
		ratio  string
		uplink float64
	}{
		{"non-blocking", 0},
		{"2:1", 8 * 117 / 2},
		{"4:1", 8 * 117 / 4},
	}
	for _, f := range fabrics {
		for _, engine := range []core.Engine{core.EngineHadoopV1, core.EngineSMapReduce} {
			cluster := cfg.cluster()
			cluster.Net.NodesPerRack = 8
			cluster.Net.RackUplinkMBps = f.uplink
			// A modern (netty-style) shuffle implementation: per-fetch
			// caps high enough that the fabric, not the copier, is the
			// shuffle bottleneck — otherwise oversubscription is
			// invisible behind the Hadoop-1 copier ceiling.
			cluster.PerFetchMBps = 20
			r, err := core.Run(engine, core.Options{Cluster: cluster}, cfg.spec("terasort", 40))
			if err != nil {
				return nil, fmt.Errorf("oversubscription %s/%v: %w", f.ratio, engine, err)
			}
			res.Rows = append(res.Rows, OversubRow{Ratio: f.ratio, Engine: engine, Exec: r.Jobs[0].ExecutionTime()})
		}
	}
	return res, nil
}

// OracleRow is one arm of the adaptivity-gap study.
type OracleRow struct {
	Setting string
	Exec    float64
}

// OracleResult compares SMapReduce against the best static
// configuration found by exhaustive search — the budget an adaptive
// controller is trying to reach without the search.
type OracleResult struct {
	Benchmark  string
	BestSlots  int
	Rows       []OracleRow
	SweepTimes map[int]float64 // static exec time per slot count
}

// Table renders the study.
func (r *OracleResult) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Adaptivity gap (%s): SMapReduce vs best static config", r.Benchmark),
		"setting", "exec s")
	for _, row := range r.Rows {
		t.AddRowf(row.Setting, row.Exec)
	}
	return t
}

// Get returns the exec time for a setting, or -1.
func (r *OracleResult) Get(setting string) float64 {
	for _, row := range r.Rows {
		if row.Setting == setting {
			return row.Exec
		}
	}
	return -1
}

// OracleGap sweeps HadoopV1 static map slots 1..10 on a map-heavy job,
// records the oracle-best static configuration, and measures how close
// SMapReduce (which starts misconfigured at 3 and must learn) comes to
// it.
func OracleGap(cfg Config) (*OracleResult, error) {
	cfg = cfg.normalize()
	res := &OracleResult{Benchmark: "histogram-ratings", SweepTimes: make(map[int]float64)}
	best, bestExec := 0, 0.0
	for slots := 1; slots <= 10; slots++ {
		cluster := cfg.cluster()
		cluster.MapSlots = slots
		cluster.MaxMapSlots = slots
		r, err := core.Run(core.EngineHadoopV1, core.Options{Cluster: cluster}, cfg.spec("histogram-ratings", 120))
		if err != nil {
			return nil, fmt.Errorf("oracle sweep %d: %w", slots, err)
		}
		exec := r.Jobs[0].ExecutionTime()
		res.SweepTimes[slots] = exec
		if best == 0 || exec < bestExec {
			best, bestExec = slots, exec
		}
	}
	res.BestSlots = best

	def, err := core.Run(core.EngineHadoopV1, core.Options{Cluster: cfg.cluster()}, cfg.spec("histogram-ratings", 120))
	if err != nil {
		return nil, err
	}
	smr, err := core.Run(core.EngineSMapReduce, core.Options{Cluster: cfg.cluster()}, cfg.spec("histogram-ratings", 120))
	if err != nil {
		return nil, err
	}
	res.Rows = []OracleRow{
		{"HadoopV1 default (3 slots)", def.Jobs[0].ExecutionTime()},
		{fmt.Sprintf("HadoopV1 oracle (%d slots)", best), bestExec},
		{"SMapReduce (starts at 3)", smr.Jobs[0].ExecutionTime()},
	}
	return res, nil
}
