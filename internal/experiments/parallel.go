package experiments

import (
	"runtime"
	"sync"
)

// parallelFor runs fn(i) for i in [0, n) across GOMAXPROCS workers.
// Each simulation owns its cluster, clock and RNG, so independent runs
// parallelise perfectly; results must be written to pre-sized slices
// indexed by i, keeping output order deterministic regardless of
// scheduling. When several iterations fail, the error from the lowest
// index is returned — deterministic regardless of which goroutine
// reported first.
func parallelFor(n int, fn func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		errIdx = -1
		minErr error
	)
	// One buffer slot per worker: the dispatcher stays a full round
	// ahead, so a worker finishing an iteration dequeues the next index
	// immediately instead of blocking on a rendezvous with the
	// dispatcher goroutine.
	next := make(chan int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					mu.Lock()
					if errIdx < 0 || i < errIdx {
						errIdx, minErr = i, err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return minErr
}
