// Ablations beyond the paper's Fig. 7, covering the design choices
// DESIGN.md §7 calls out: the balance-factor bounds, the slow-start
// threshold, the suspected-thrashing confirmation count, lazy versus
// eager slot changing, and the tail-stretch reduce boost. Each returns
// typed rows plus a rendered table and has a matching testing.B
// benchmark at the repository root.
package experiments

import (
	"fmt"

	"smapreduce/internal/core"
	"smapreduce/internal/metrics"
	"smapreduce/internal/mr"
	"smapreduce/internal/resource"
)

// AblationRow is one (setting, outcome) sample.
type AblationRow struct {
	Setting  string
	ExecTime float64
	MapTime  float64
}

// AblationResult is a one-dimensional sweep.
type AblationResult struct {
	Name string
	Rows []AblationRow
}

// Table renders the sweep.
func (r *AblationResult) Table() *metrics.Table {
	t := metrics.NewTable("Ablation — "+r.Name, "setting", "map s", "exec s")
	for _, row := range r.Rows {
		t.AddRowf(row.Setting, row.MapTime, row.ExecTime)
	}
	return t
}

// Get returns the exec time for a setting, or -1.
func (r *AblationResult) Get(setting string) float64 {
	for _, row := range r.Rows {
		if row.Setting == setting {
			return row.ExecTime
		}
	}
	return -1
}

// runAblation executes one SMapReduce job per slot-manager variant.
func runAblation(cfg Config, name, bench string, gb float64,
	variants []struct {
		label string
		sm    core.SlotManagerConfig
	}) (*AblationResult, error) {
	cfg = cfg.normalize()
	res := &AblationResult{Name: name}
	for _, v := range variants {
		r, err := core.Run(core.EngineSMapReduce,
			core.Options{Cluster: cfg.cluster(), SlotManager: v.sm}, cfg.spec(bench, gb))
		if err != nil {
			return nil, fmt.Errorf("ablation %s/%s: %w", name, v.label, err)
		}
		res.Rows = append(res.Rows, AblationRow{
			Setting:  v.label,
			ExecTime: r.Jobs[0].ExecutionTime(),
			MapTime:  r.Jobs[0].MapTime(),
		})
	}
	return res, nil
}

// AblationBounds sweeps the balance-factor band on a medium workload.
func AblationBounds(cfg Config) (*AblationResult, error) {
	type pair struct{ lo, hi float64 }
	var variants []struct {
		label string
		sm    core.SlotManagerConfig
	}
	for _, p := range []pair{{0.95, 1.05}, {0.8, 1.3}, {0.6, 1.8}} {
		variants = append(variants, struct {
			label string
			sm    core.SlotManagerConfig
		}{
			label: fmt.Sprintf("bounds [%.2f, %.2f]", p.lo, p.hi),
			sm:    core.SlotManagerConfig{LowerBound: p.lo, UpperBound: p.hi},
		})
	}
	// Terasort's balance factor hovers near 1.0 at the default slots,
	// so the band genuinely decides between holding and hunting.
	return runAblation(cfg, "balance-factor bounds (terasort)", "terasort", 60, variants)
}

// AblationSlowStart sweeps the slow-start threshold.
func AblationSlowStart(cfg Config) (*AblationResult, error) {
	var variants []struct {
		label string
		sm    core.SlotManagerConfig
	}
	for _, f := range []float64{0.02, 0.10, 0.30} {
		variants = append(variants, struct {
			label string
			sm    core.SlotManagerConfig
		}{
			label: fmt.Sprintf("slow start %.0f%%", 100*f),
			sm:    core.SlotManagerConfig{SlowStartFraction: f},
		})
	}
	return runAblation(cfg, "slow-start threshold (histogram-movies)", "histogram-movies", 60, variants)
}

// AblationConfirmations sweeps the suspected-thrashing confirmation
// count.
func AblationConfirmations(cfg Config) (*AblationResult, error) {
	var variants []struct {
		label string
		sm    core.SlotManagerConfig
	}
	for _, n := range []int{1, 2, 4} {
		variants = append(variants, struct {
			label string
			sm    core.SlotManagerConfig
		}{
			label: fmt.Sprintf("%d confirmation(s)", n),
			sm:    core.SlotManagerConfig{SuspectConfirmations: n},
		})
	}
	return runAblation(cfg, "thrashing confirmations (inverted-index)", "inverted-index", 60, variants)
}

// AblationLazyVsEager compares the paper's lazy slot changing against
// the eager kill-and-reschedule alternative it argues against (§III-D).
func AblationLazyVsEager(cfg Config) (*AblationResult, error) {
	cfg = cfg.normalize()
	res := &AblationResult{Name: "lazy vs eager slot changing (ranked-inverted-index)"}
	for _, eager := range []bool{false, true} {
		cluster := cfg.cluster()
		cluster.EagerSlotChange = eager
		label := "lazy (paper)"
		if eager {
			label = "eager (kill and reschedule)"
		}
		// ranked-inverted-index is calibrated so the shuffle lags at the
		// initial slots: the manager decrements, and the two shrink
		// policies genuinely diverge.
		r, err := core.Run(core.EngineSMapReduce, core.Options{Cluster: cluster}, cfg.spec("ranked-inverted-index", 60))
		if err != nil {
			return nil, fmt.Errorf("ablation lazy/eager: %w", err)
		}
		res.Rows = append(res.Rows, AblationRow{
			Setting:  label,
			ExecTime: r.Jobs[0].ExecutionTime(),
			MapTime:  r.Jobs[0].MapTime(),
		})
	}
	return res, nil
}

// AblationTailBoost measures the tail-stretch reduce boost on the job
// class it targets: small shuffle per reducer, non-trivial reduce
// compute, and more reduce tasks than slots so the boost removes a
// whole reduce wave (kmeans with 64 reducers on 32 default slots).
func AblationTailBoost(cfg Config) (*AblationResult, error) {
	cfg = cfg.normalize()
	cfg.Reduces = 64
	return runAblation(cfg, "tail-stretch reduce boost (kmeans, 64 reducers)", "kmeans", 60,
		[]struct {
			label string
			sm    core.SlotManagerConfig
		}{
			{"boost on (paper)", core.SlotManagerConfig{}},
			{"boost off", core.SlotManagerConfig{DisableTailBoost: true}},
		})
}

// HeteroRow is one engine/controller arm on the heterogeneous cluster.
type HeteroRow struct {
	Setting  string
	ExecTime float64
}

// HeteroResult compares engines on a mixed-hardware cluster.
type HeteroResult struct {
	Rows []HeteroRow
}

// Table renders the comparison.
func (r *HeteroResult) Table() *metrics.Table {
	t := metrics.NewTable("Heterogeneous cluster (future work §VII)", "setting", "exec s")
	for _, row := range r.Rows {
		t.AddRowf(row.Setting, row.ExecTime)
	}
	return t
}

// Get returns the exec time for a setting, or -1.
func (r *HeteroResult) Get(setting string) float64 {
	for _, row := range r.Rows {
		if row.Setting == setting {
			return row.ExecTime
		}
	}
	return -1
}

// Heterogeneous runs a map-heavy job on a cluster whose second half has
// half the cores, comparing HadoopV1, uniform SMapReduce, and
// SMapReduce with per-node target scaling — the extension the paper
// leaves as future work.
func Heterogeneous(cfg Config) (*HeteroResult, error) {
	cfg = cfg.normalize()
	cluster := cfg.cluster()
	specs := make([]resource.Spec, cluster.Workers)
	for i := range specs {
		specs[i] = cluster.NodeSpec
		if i >= cluster.Workers/2 {
			specs[i].Cores /= 2
			specs[i].RAMMB /= 2
			specs[i].ContentionScale *= 2 // half the machine: same load feels twice as heavy
		}
	}
	cluster.NodeSpecs = specs

	res := &HeteroResult{}
	run := func(label string, engine core.Engine, sm core.SlotManagerConfig) error {
		r, err := core.Run(engine, core.Options{Cluster: cluster, SlotManager: sm},
			cfg.spec("histogram-ratings", 80))
		if err != nil {
			return fmt.Errorf("hetero %s: %w", label, err)
		}
		res.Rows = append(res.Rows, HeteroRow{Setting: label, ExecTime: r.Jobs[0].ExecutionTime()})
		return nil
	}
	if err := run("HadoopV1 static", core.EngineHadoopV1, core.SlotManagerConfig{}); err != nil {
		return nil, err
	}
	if err := run("SMapReduce uniform targets", core.EngineSMapReduce, core.SlotManagerConfig{}); err != nil {
		return nil, err
	}
	if err := run("SMapReduce per-node scaling", core.EngineSMapReduce,
		core.SlotManagerConfig{PerNodeScaling: true}); err != nil {
		return nil, err
	}
	return res, nil
}

// SpeculationResult compares runs with and without speculative
// execution on a straggler-ridden cluster.
type SpeculationResult struct {
	Rows []AblationRow
	// Launched/Wins are from the speculative run.
	Launched, Wins int
}

// Table renders the comparison.
func (r *SpeculationResult) Table() *metrics.Table {
	t := metrics.NewTable("Speculative execution on a straggler cluster", "setting", "map s", "exec s")
	for _, row := range r.Rows {
		t.AddRowf(row.Setting, row.MapTime, row.ExecTime)
	}
	return t
}

// Get returns the exec time for a setting, or -1.
func (r *SpeculationResult) Get(setting string) float64 {
	for _, row := range r.Rows {
		if row.Setting == setting {
			return row.ExecTime
		}
	}
	return -1
}

// Speculation runs grep on a cluster with two half-speed nodes, with
// and without backup attempts (a runtime extension beyond the paper;
// HadoopV1 policy so the measurement isolates speculation itself).
func Speculation(cfg Config) (*SpeculationResult, error) {
	cfg = cfg.normalize()
	res := &SpeculationResult{}
	for _, speculate := range []bool{false, true} {
		cluster := cfg.cluster()
		specs := make([]resource.Spec, cluster.Workers)
		for i := range specs {
			specs[i] = cluster.NodeSpec
			if i >= cluster.Workers-cluster.Workers/4 {
				specs[i].CoreSpeed *= 0.4
			}
		}
		cluster.NodeSpecs = specs
		cluster.Speculation = speculate
		cluster.SpeculationMinRuntime = 3
		label := "no speculation"
		if speculate {
			label = "speculation on"
		}
		r, err := core.Run(core.EngineHadoopV1, core.Options{Cluster: cluster}, cfg.spec("grep", 60))
		if err != nil {
			return nil, fmt.Errorf("speculation %s: %w", label, err)
		}
		j := r.Jobs[0]
		res.Rows = append(res.Rows, AblationRow{Setting: label, ExecTime: j.ExecutionTime(), MapTime: j.MapTime()})
		if speculate {
			res.Launched, res.Wins = j.SpeculativeLaunched, j.SpeculativeWins
		}
	}
	return res, nil
}

// SchedulerRow is one (scheduler, engine) outcome on a multi-job mix.
type SchedulerRow struct {
	Scheduler string
	MeanExec  float64
	Last      float64
}

// SchedulerResult compares FIFO with the fair scheduler under
// SMapReduce on a mixed multi-job workload.
type SchedulerResult struct {
	Rows []SchedulerRow
}

// Table renders the comparison.
func (r *SchedulerResult) Table() *metrics.Table {
	t := metrics.NewTable("FIFO vs Fair scheduling under SMapReduce", "scheduler", "mean exec s", "last finish s")
	for _, row := range r.Rows {
		t.AddRowf(row.Scheduler, row.MeanExec, row.Last)
	}
	return t
}

// Schedulers runs a short-jobs-behind-long-job workload under both
// schedulers; Fair should cut the mean by letting the short jobs
// through, at modest cost to the last finish.
func Schedulers(cfg Config) (*SchedulerResult, error) {
	cfg = cfg.normalize()
	res := &SchedulerResult{}
	for _, kind := range []mr.SchedulerKind{mr.FIFO, mr.Fair} {
		cluster := cfg.cluster()
		cluster.Scheduler = kind
		specs := []mr.JobSpec{
			cfg.spec("terasort", 60),
			cfg.spec("grep", 10),
			cfg.spec("grep", 10),
		}
		specs[0].Name = "long-terasort"
		specs[1].Name, specs[1].SubmitAt = "short-grep-1", 10
		specs[2].Name, specs[2].SubmitAt = "short-grep-2", 20
		r, err := core.Run(core.EngineSMapReduce, core.Options{Cluster: cluster}, specs...)
		if err != nil {
			return nil, fmt.Errorf("schedulers %v: %w", kind, err)
		}
		res.Rows = append(res.Rows, SchedulerRow{
			Scheduler: kind.String(),
			MeanExec:  r.MeanExecutionTime(),
			Last:      r.LastFinish(),
		})
	}
	return res, nil
}
