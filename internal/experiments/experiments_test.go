package experiments

import (
	"math"
	"strings"
	"testing"

	"smapreduce/internal/core"
)

// testCfg runs the paper-scale configuration: the slot manager needs
// jobs long enough to adapt, so the qualitative shapes the assertions
// check only exist at full scale. Each figure test runs in parallel and
// the whole file finishes in well under a minute.
func testCfg() Config {
	return Default()
}

// shape marks a full-scale figure test: parallel, skipped under -short.
func shape(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("full-scale figure reproduction skipped in -short mode")
	}
	t.Parallel()
}

func TestDefaultNormalize(t *testing.T) {
	c := Config{}.normalize()
	d := Default()
	d.Trials = 1 // normalize fills the trial count too
	if c != d {
		t.Fatalf("normalize() = %+v, want %+v", c, d)
	}
	custom := Config{Scale: 0.5}.normalize()
	if custom.Scale != 0.5 || custom.Workers != d.Workers {
		t.Fatalf("partial normalize wrong: %+v", custom)
	}
}

func TestFigure1Shapes(t *testing.T) {
	shape(t)
	r, err := Figure1(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 3*10 {
		t.Fatalf("points = %d, want 30", len(r.Points))
	}
	// Every curve rises from 1 slot to its peak and falls after it.
	for _, bench := range []string{"terasort", "term-vector", "grep"} {
		peak := r.Peak(bench)
		if peak <= 1 || peak >= 10 {
			t.Fatalf("%s peak = %d, want interior peak", bench, peak)
		}
		at := func(slots int) float64 {
			for _, p := range r.Points {
				if p.Benchmark == bench && p.MapSlots == slots {
					return p.ThroughputMBs
				}
			}
			return -1
		}
		if at(1) >= at(peak) {
			t.Errorf("%s: no rise before peak (%v vs %v)", bench, at(1), at(peak))
		}
		if at(10) >= at(peak) {
			t.Errorf("%s: no fall after peak (%v vs %v)", bench, at(10), at(peak))
		}
	}
	// §II-B: map-heavy jobs thrash later than reduce-heavy ones.
	if r.Peak("grep") <= r.Peak("terasort") {
		t.Errorf("grep peak %d not above terasort peak %d", r.Peak("grep"), r.Peak("terasort"))
	}
	if !strings.Contains(r.Table().String(), "Figure 1") {
		t.Error("table missing title")
	}
}

func TestFigure3Shapes(t *testing.T) {
	shape(t)
	r, err := Figure3(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(Fig3Benchmarks)*3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// SMapReduce beats both baselines on the map-heavy benchmarks.
	for _, bench := range []string{"histogram-movies", "histogram-ratings", "grep"} {
		if s := r.SpeedupOver(bench, core.EngineHadoopV1); s < 0.10 {
			t.Errorf("%s vs HadoopV1 speedup %.2f, want > 0.10", bench, s)
		}
		if s := r.SpeedupOver(bench, core.EngineYARN); s < 0.05 {
			t.Errorf("%s vs YARN speedup %.2f, want > 0.05", bench, s)
		}
	}
	// Terasort is the exception: within ±10% of HadoopV1 (paper: slight
	// regression, negligible overhead).
	if s := r.SpeedupOver("terasort", core.EngineHadoopV1); math.Abs(s) > 0.10 {
		t.Errorf("terasort speedup %.2f, want ≈0", s)
	}
	// Map-heavy gains exceed reduce-heavy gains (paper §V-A).
	if r.SpeedupOver("grep", core.EngineHadoopV1) <= r.SpeedupOver("terasort", core.EngineHadoopV1) {
		t.Error("map-heavy gain not above reduce-heavy gain")
	}
	// Sanity on every row.
	for _, row := range r.Rows {
		if row.MapTime <= 0 || row.ExecTime <= 0 || row.ExecTime < row.MapTime {
			t.Errorf("implausible row %+v", row)
		}
	}
}

func TestFigure4Shapes(t *testing.T) {
	shape(t)
	r, err := Figure4(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range []string{"HadoopV1", "YARN", "SMapReduce"} {
		pts := r.Curves[eng]
		if len(pts) == 0 {
			t.Fatalf("no curve for %s", eng)
		}
		if pts[len(pts)-1].V != 200 {
			t.Errorf("%s final progress %v, want 200", eng, pts[len(pts)-1].V)
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].V < pts[i-1].V-1e-6 {
				t.Errorf("%s progress regressed at %d", eng, i)
			}
		}
	}
	// SMapReduce crosses the barrier (100%) first.
	if r.CrossingTime("SMapReduce", 100) >= r.CrossingTime("HadoopV1", 100) {
		t.Error("SMapReduce did not reach the barrier before HadoopV1")
	}
	if r.Table().String() == "" {
		t.Error("empty table")
	}
}

func TestFigure5Shapes(t *testing.T) {
	shape(t)
	r, err := Figure5(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// SMapReduce rescues badly misconfigured clusters: at 1 map slot
	// its map time is far below both baselines.
	if r.Get(1, core.EngineSMapReduce) >= 0.6*r.Get(1, core.EngineHadoopV1) {
		t.Errorf("SMR at 1 slot (%v) not well below V1 (%v)",
			r.Get(1, core.EngineSMapReduce), r.Get(1, core.EngineHadoopV1))
	}
	// Baselines improve as the static config approaches their optimum.
	if r.Get(1, core.EngineHadoopV1) <= r.Get(6, core.EngineHadoopV1) {
		t.Error("HadoopV1 map time did not improve with more slots")
	}
	// SMapReduce stays within a modest factor of the baselines' best.
	bestV1 := math.Inf(1)
	worstSMR := 0.0
	for slots := 1; slots <= 8; slots++ {
		if v := r.Get(slots, core.EngineHadoopV1); v < bestV1 {
			bestV1 = v
		}
		if v := r.Get(slots, core.EngineSMapReduce); v > worstSMR {
			worstSMR = v
		}
	}
	for slots := 5; slots <= 8; slots++ {
		if v := r.Get(slots, core.EngineSMapReduce); v > 1.35*bestV1 {
			t.Errorf("SMR at %d slots (%v) too far from V1 optimum (%v)", slots, v, bestV1)
		}
	}
}

func TestFigure6Shapes(t *testing.T) {
	shape(t)
	r, err := Figure6(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Advantage over HadoopV1 grows with input size.
	first := r.Get(50, core.EngineSMapReduce) / r.Get(50, core.EngineHadoopV1)
	last := r.Get(250, core.EngineSMapReduce) / r.Get(250, core.EngineHadoopV1)
	if last <= first {
		t.Errorf("SMR/V1 ratio did not grow: %.2f → %.2f", first, last)
	}
	if last < 1.3 {
		t.Errorf("SMR/V1 at largest input %.2f, want > 1.3", last)
	}
	// SMapReduce throughput itself grows with input size (paper: more
	// time to adapt); HadoopV1 stays roughly flat.
	if r.Get(250, core.EngineSMapReduce) <= r.Get(50, core.EngineSMapReduce) {
		t.Error("SMR throughput did not grow with input")
	}
	v1Spread := r.Get(250, core.EngineHadoopV1) / r.Get(50, core.EngineHadoopV1)
	if v1Spread > 1.25 || v1Spread < 0.75 {
		t.Errorf("HadoopV1 throughput not flat: spread %.2f", v1Spread)
	}
}

func TestFigure7Shapes(t *testing.T) {
	shape(t)
	r, err := Figure7(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, bench := range Fig7Benchmarks {
		full := r.Get(bench, VariantFull)
		noDet := r.Get(bench, VariantNoThrashDet)
		v1 := r.Get(bench, VariantHadoopV1)
		yarn := r.Get(bench, VariantYARN)
		if full <= 0 || noDet <= 0 || v1 <= 0 || yarn <= 0 {
			t.Fatalf("%s: missing arms", bench)
		}
		// The paper's headline: without detection, map time is much
		// longer than both baselines.
		if noDet <= v1 || noDet <= yarn {
			t.Errorf("%s: no-detection (%v) not worse than baselines (%v/%v)", bench, noDet, v1, yarn)
		}
		// Full SMapReduce beats both baselines.
		if full >= v1 || full >= yarn {
			t.Errorf("%s: full SMR (%v) not better than baselines (%v/%v)", bench, full, v1, yarn)
		}
		if r.Get(bench, VariantNoSlowStart) <= 0 {
			t.Errorf("%s: missing no-slow-start arm", bench)
		}
	}
}

func TestFigure8Shapes(t *testing.T) {
	shape(t)
	r, err := Figure8(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	smr, _ := r.Get(core.EngineSMapReduce)
	v1, _ := r.Get(core.EngineHadoopV1)
	yarn, _ := r.Get(core.EngineYARN)
	// Grep multi-job: SMapReduce clearly ahead on both metrics.
	if smr.MeanExec >= 0.9*v1.MeanExec {
		t.Errorf("SMR mean %v not well below V1 %v", smr.MeanExec, v1.MeanExec)
	}
	if smr.LastFinish >= 0.9*v1.LastFinish {
		t.Errorf("SMR last %v not well below V1 %v", smr.LastFinish, v1.LastFinish)
	}
	if smr.MeanExec >= yarn.MeanExec {
		t.Errorf("SMR mean %v not below YARN %v", smr.MeanExec, yarn.MeanExec)
	}
	if v1.LastFinish < v1.MeanExec || smr.LastFinish < smr.MeanExec {
		t.Error("last finish before mean exec")
	}
}

func TestFigure9Shapes(t *testing.T) {
	shape(t)
	r, err := Figure9(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	smr, _ := r.Get(core.EngineSMapReduce)
	v1, _ := r.Get(core.EngineHadoopV1)
	// InvertedIndex multi-job is shuffle-bound in our substrate: we
	// assert SMapReduce stays within 10% of HadoopV1 (the paper reports
	// a win here; see EXPERIMENTS.md for the documented deviation).
	if smr.MeanExec > 1.10*v1.MeanExec {
		t.Errorf("SMR mean %v more than 10%% worse than V1 %v", smr.MeanExec, v1.MeanExec)
	}
	if smr.LastFinish > 1.10*v1.LastFinish {
		t.Errorf("SMR last %v more than 10%% worse than V1 %v", smr.LastFinish, v1.LastFinish)
	}
	if r.Benchmark != "inverted-index" {
		t.Errorf("benchmark = %s", r.Benchmark)
	}
}

func TestTablesRender(t *testing.T) {
	cfg := Config{Scale: 0.1, Workers: 8, Reduces: 8, Seed: 2}
	f8, err := Figure8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := f8.Table().String()
	for _, want := range []string{"grep", "HadoopV1", "YARN", "SMapReduce"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestTrialsAveraging(t *testing.T) {
	shape(t)
	small := Config{Scale: 0.2, Workers: 8, Reduces: 8, Seed: 3}
	one, err := Figure8(small)
	if err != nil {
		t.Fatal(err)
	}
	two := small
	two.Trials = 2
	avg, err := Figure8(two)
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := one.Get(core.EngineHadoopV1)
	r2, _ := avg.Get(core.EngineHadoopV1)
	if r2.MeanExec <= 0 {
		t.Fatal("averaged mean missing")
	}
	// Averaging over two seeds must produce a value close to, but not
	// identical with, a single trial (different seeds shift jitter).
	if r1.MeanExec == r2.MeanExec {
		t.Fatal("averaging had no effect")
	}
	if r2.MeanExec < 0.7*r1.MeanExec || r2.MeanExec > 1.3*r1.MeanExec {
		t.Fatalf("averaged value implausible: %v vs %v", r2.MeanExec, r1.MeanExec)
	}
}

func TestTrialsAveragingFig6(t *testing.T) {
	shape(t)
	small := Config{Scale: 0.1, Workers: 8, Reduces: 8, Seed: 3, Trials: 2}
	r, err := Figure6(small)
	if err != nil {
		t.Fatal(err)
	}
	for _, gb := range []float64{50, 250} {
		if r.Get(gb, core.EngineHadoopV1) <= 0 {
			t.Fatalf("missing averaged value at %v GB", gb)
		}
	}
}
