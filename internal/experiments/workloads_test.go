package experiments

import (
	"testing"

	"smapreduce/internal/core"
)

func TestControllerComparison(t *testing.T) {
	shape(t)
	r, err := ControllerComparison(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Map-heavy: both controllers beat static; the climber is
	// competitive with the manager.
	mh := "histogram-ratings"
	static := r.Get(mh, "static (HadoopV1)")
	smr := r.Get(mh, "slot manager (paper)")
	hc := r.Get(mh, "hill climber (model-free)")
	if smr >= static || hc >= static {
		t.Errorf("map-heavy: controllers did not beat static (%v / %v vs %v)", smr, hc, static)
	}
	if hc > 1.3*smr {
		t.Errorf("map-heavy: hill climber (%v) far behind manager (%v)", hc, smr)
	}
	// Reduce-heavy: the manager must not lose to the model-free law.
	ts := "terasort"
	if r.Get(ts, "slot manager (paper)") > 1.05*r.Get(ts, "hill climber (model-free)") {
		t.Errorf("reduce-heavy: manager (%v) lost to climber (%v)",
			r.Get(ts, "slot manager (paper)"), r.Get(ts, "hill climber (model-free)"))
	}
}

func TestSkewSensitivity(t *testing.T) {
	shape(t)
	r, err := SkewSensitivity(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []core.Engine{core.EngineHadoopV1, core.EngineSMapReduce} {
		prev := 0.0
		for _, skew := range []float64{0, 0.5, 1.0} {
			exec := r.Get(skew, engine)
			if exec <= 0 {
				t.Fatalf("%v missing skew %v", engine, skew)
			}
			if exec < prev {
				t.Errorf("%v: skew %v (%v) faster than lighter skew (%v)", engine, skew, exec, prev)
			}
			prev = exec
		}
		// A Zipf-1 hot partition must visibly stretch the job.
		if r.Get(1.0, engine) < 1.1*r.Get(0, engine) {
			t.Errorf("%v: heavy skew barely visible: %v vs %v", engine, r.Get(1.0, engine), r.Get(0, engine))
		}
	}
}

func TestGenerateTraceDeterministic(t *testing.T) {
	a := GenerateTrace(7, 10, 30, 5, 40, 8)
	b := GenerateTrace(7, 10, 30, 5, 40, 8)
	if len(a) != 10 || len(b) != 10 {
		t.Fatalf("trace lengths %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].InputMB != b[i].InputMB || a[i].SubmitAt != b[i].SubmitAt {
			t.Fatalf("trace not deterministic at %d", i)
		}
		if a[i].InputMB < 5*1024 || a[i].InputMB > 40*1024 {
			t.Fatalf("size out of range: %v", a[i].InputMB)
		}
		if err := a[i].Validate(); err != nil {
			t.Fatal(err)
		}
	}
	// Arrivals strictly increase (exponential gaps are positive).
	for i := 1; i < len(a); i++ {
		if a[i].SubmitAt <= a[i-1].SubmitAt {
			t.Fatal("arrivals not increasing")
		}
	}
	// Different seeds differ.
	c := GenerateTrace(8, 10, 30, 5, 40, 8)
	same := true
	for i := range a {
		if a[i].InputMB != c[i].InputMB {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestTraceWorkload(t *testing.T) {
	shape(t)
	r, err := TraceWorkload(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	v1, _ := r.Get(core.EngineHadoopV1)
	smr, _ := r.Get(core.EngineSMapReduce)
	if v1.MeanExec <= 0 || smr.MeanExec <= 0 {
		t.Fatal("missing rows")
	}
	for _, row := range r.Rows {
		if row.P95Exec < row.MeanExec {
			t.Errorf("%v: p95 (%v) below mean (%v)", row.Engine, row.P95Exec, row.MeanExec)
		}
		if row.Makespan <= 0 {
			t.Errorf("%v: makespan %v", row.Engine, row.Makespan)
		}
	}
	// On a mixed production trace the slot manager must not lose to
	// static slots on mean latency, and typically wins.
	if smr.MeanExec > 1.05*v1.MeanExec {
		t.Errorf("trace mean: SMR (%v) lost to V1 (%v)", smr.MeanExec, v1.MeanExec)
	}
}
