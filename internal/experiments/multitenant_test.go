package experiments

import (
	"testing"

	"smapreduce/internal/core"
)

// shootoutCfg shrinks the sweep so the test stays fast: the tenant mix
// still saturates at load 2 because input sizes shrink with Scale while
// arrival rates stay fixed.
func shootoutCfg() Config {
	cfg := Default()
	cfg.Scale = 0.05
	cfg.Workers = 8
	cfg.Reduces = 8
	return cfg
}

func TestMultiTenantShootout(t *testing.T) {
	shape(t)
	r, err := MultiTenantShootout(shootoutCfg())
	if err != nil {
		t.Fatal(err)
	}
	engines, loads := ShootoutEngines(), ShootoutLoads()
	if len(engines) < 4 {
		t.Fatalf("shoot-out compares only %d engines", len(engines))
	}
	if len(r.Rows) != len(engines)*len(loads) {
		t.Fatalf("rows = %d, want %d", len(r.Rows), len(engines)*len(loads))
	}
	for _, engine := range engines {
		for _, load := range loads {
			row, ok := r.Get(engine, load)
			if !ok {
				t.Fatalf("missing row %v/%g", engine, load)
			}
			if row.Jobs <= 0 {
				t.Fatalf("%v load %g admitted no jobs", engine, load)
			}
			if !(row.Makespan > 0 && row.P50 > 0 && row.P99 >= row.P50) {
				t.Fatalf("%v load %g: makespan=%v p50=%v p99=%v",
					engine, load, row.Makespan, row.P50, row.P99)
			}
			if row.SLOMisses < 0 || row.SLOMisses > row.Jobs {
				t.Fatalf("%v load %g: SLO misses %d of %d jobs", engine, load, row.SLOMisses, row.Jobs)
			}
		}
		// The same arrival stream feeds every load level; higher load
		// must admit at least as many jobs.
		lo, _ := r.Get(engine, loads[0])
		hi, _ := r.Get(engine, loads[len(loads)-1])
		if hi.Jobs < lo.Jobs {
			t.Errorf("%v: jobs fell from %d to %d as load rose", engine, lo.Jobs, hi.Jobs)
		}
	}
	// Identical engines see identical workloads: the job count at a
	// given load is engine-independent (arrival streams are a pure
	// function of the seed and load, never the engine).
	for _, load := range loads {
		ref, _ := r.Get(engines[0], load)
		for _, engine := range engines[1:] {
			row, _ := r.Get(engine, load)
			if row.Jobs != ref.Jobs {
				t.Errorf("load %g: %v admitted %d jobs but %v admitted %d",
					load, engines[0], ref.Jobs, engine, row.Jobs)
			}
		}
	}
	if tbl := r.Table(); tbl == nil || len(tbl.Rows) != len(r.Rows) {
		t.Fatal("Table() malformed")
	}
}

func TestShootoutDeterministic(t *testing.T) {
	shape(t)
	cfg := shootoutCfg()
	a, err := MultiTenantShootout(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MultiTenantShootout(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Fatalf("row %d diverged between identical sweeps:\n%+v\n%+v", i, a.Rows[i], b.Rows[i])
		}
	}
	// The capacity engines must actually exercise their policies.
	loads := ShootoutLoads()
	for _, engine := range core.CapacityEngines() {
		row, ok := a.Get(engine, loads[len(loads)-1])
		if !ok || row.Jobs == 0 {
			t.Fatalf("capacity engine %v ran no jobs", engine)
		}
	}
}
