package experiments

import (
	"fmt"

	"smapreduce/internal/mr"
	"smapreduce/internal/puma"
)

// Cell adapters: the grid harness (internal/grid) builds each cell's
// cluster and job specs through these, so a grid cell and a figure
// harness share one definition of "a cluster of W trackers at scale S
// running benchmark B" — the same defaults, the same seed plumbing,
// the same input-size arithmetic.

// ClusterConfig returns the experiment cluster for this configuration:
// the figure harnesses' cluster() with zero fields defaulted, exported
// for grid cells.
func (c Config) ClusterConfig() mr.Config {
	return c.normalize().cluster()
}

// CellSpec builds one job spec at the experiment's scale, like spec()
// but with an explicit reduce count and an error instead of a panic on
// unknown benchmarks — grid specs are user input, not code.
func (c Config) CellSpec(bench string, gb float64, reduces int) (mr.JobSpec, error) {
	c = c.normalize()
	prof, err := puma.Get(bench)
	if err != nil {
		return mr.JobSpec{}, fmt.Errorf("experiments: cell spec: %w", err)
	}
	if reduces <= 0 {
		return mr.JobSpec{}, fmt.Errorf("experiments: cell spec %s: reduces = %d, must be positive", bench, reduces)
	}
	return mr.JobSpec{
		Name:    bench,
		Profile: prof,
		InputMB: gb * 1024 * c.Scale,
		Reduces: reduces,
	}, nil
}
