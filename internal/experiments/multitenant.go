package experiments

import (
	"fmt"

	"smapreduce/internal/arrival"
	"smapreduce/internal/core"
	"smapreduce/internal/metrics"
	"smapreduce/internal/par"
	"smapreduce/internal/policy"
)

// Multi-tenant capacity-policy shoot-out: an open arrival process with
// three competing tenants (an SLO-bound analytics queue, a heavier ETL
// queue and an always-on service stream) replayed identically against
// every engine at several offered-load multipliers. The question the
// sweep answers is the one a capacity policy exists for: as load
// approaches and passes saturation, which policy keeps the SLO-bound
// tenant's latency tail intact, and what does that protection cost the
// batch tenants in makespan?

// ShootoutRow is one (engine, load) cell of the sweep.
type ShootoutRow struct {
	Engine core.Engine
	// Load is the offered-load multiplier applied to the batch tenants'
	// arrival rates (1.0 ≈ the mix that keeps the paper-scale cluster
	// moderately busy).
	Load float64
	// Jobs counts admitted (= completed) jobs over the horizon.
	Jobs int
	// Makespan is the finish time of the last job, in seconds.
	Makespan float64
	// P50/P99 are per-job latency percentiles (submission→finish).
	P50, P99 float64
	// SLOMisses counts analytics jobs that blew their latency objective.
	SLOMisses int
}

// ShootoutResult holds the full sweep.
type ShootoutResult struct {
	Rows []ShootoutRow
}

// Get returns the row for (engine, load), or false.
func (r *ShootoutResult) Get(engine core.Engine, load float64) (ShootoutRow, bool) {
	for _, row := range r.Rows {
		if row.Engine == engine && row.Load == load {
			return row, true
		}
	}
	return ShootoutRow{}, false
}

// Table renders the sweep.
func (r *ShootoutResult) Table() *metrics.Table {
	t := metrics.NewTable("Multi-tenant capacity shoot-out",
		"engine", "load", "jobs", "makespan s", "p50 s", "p99 s", "SLO miss")
	for _, row := range r.Rows {
		t.AddRowf(row.Engine.String(), row.Load, row.Jobs, row.Makespan, row.P50, row.P99, row.SLOMisses)
	}
	return t
}

// ShootoutEngines lists the compared systems: the paper's three plus
// the three capacity policies on static slots.
func ShootoutEngines() []core.Engine {
	return append(core.Engines(), core.CapacityEngines()...)
}

// ShootoutLoads lists the offered-load multipliers swept: a healthy
// cluster, the onset of contention, and well past saturation — the
// regime capacity policies exist for.
func ShootoutLoads() []float64 { return []float64{1, 4, 12} }

// shootoutArrivals builds the tenant mix at one load multiplier. Sizes
// scale with cfg.Scale like every other experiment workload.
func shootoutArrivals(cfg Config, load float64) arrival.Config {
	gb := 1024 * cfg.Scale
	return arrival.Config{
		Horizon:    1800,
		LoadFactor: load,
		Tenants: []arrival.Tenant{
			// Interactive analytics: small scans with a latency objective.
			{Name: "analytics", Benchmarks: []string{"grep", "histogram-ratings"},
				MeanInterarrival: 120, InputMBMin: 2 * gb, InputMBMax: 6 * gb,
				Reduces: cfg.Reduces, SLOSeconds: 600},
			// Batch ETL: heavier shuffle-bound jobs, no SLO.
			{Name: "etl", Benchmarks: []string{"terasort", "inverted-index"},
				MeanInterarrival: 300, InputMBMin: 8 * gb, InputMBMax: 12 * gb,
				Reduces: cfg.Reduces},
			// Always-on service stream: exact cadence, exempt from the
			// load multiplier — the background the batch tenants must
			// coexist with.
			{Name: "service", Benchmarks: []string{"wordcount"},
				MeanInterarrival: 240, InputMBMin: 1 * gb, InputMBMax: 1 * gb,
				Reduces: cfg.Reduces, Service: true},
		},
	}
}

// shootoutTenants is the policy configuration used by the capacity
// engines: the SLO-bound tenant weighs double and holds a 30% capacity
// guarantee under the queue policy.
func shootoutTenants() []policy.Tenant {
	return []policy.Tenant{
		{Name: "analytics", Weight: 2, Guarantee: 0.3},
		{Name: "etl", Weight: 1, Guarantee: 0.4},
		{Name: "service", Weight: 1, Guarantee: 0.2},
	}
}

// MultiTenantShootout runs the sweep: every engine sees the exact same
// arrival stream at each load level (the stream is a pure function of
// the cluster seed, not the engine), so differences in the latency
// tail are attributable to the policy alone.
func MultiTenantShootout(cfg Config) (*ShootoutResult, error) {
	cfg = cfg.normalize()
	engines := ShootoutEngines()
	loads := ShootoutLoads()
	rows := make([]ShootoutRow, len(engines)*len(loads))
	for ei, engine := range engines {
		for li, load := range loads {
			rows[ei*len(loads)+li] = ShootoutRow{Engine: engine, Load: load}
		}
	}
	err := par.For(len(rows), func(i int) error {
		row := &rows[i]
		cluster := cfg.cluster()
		src, err := arrival.New(shootoutArrivals(cfg, row.Load), arrival.RNG(cluster.Seed))
		if err != nil {
			return fmt.Errorf("shootout %v load %g: %w", row.Engine, row.Load, err)
		}
		res, err := core.Run(row.Engine, core.Options{
			Cluster:  cluster,
			Arrivals: src,
			Tenants:  shootoutTenants(),
		})
		if err != nil {
			return fmt.Errorf("shootout %v load %g: %w", row.Engine, row.Load, err)
		}
		row.Jobs = len(res.Jobs)
		row.Makespan = res.LastFinish()
		row.P50 = res.LatencyPercentile(50)
		row.P99 = res.LatencyPercentile(99)
		row.SLOMisses = res.SLOMisses()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &ShootoutResult{Rows: rows}, nil
}
