package experiments

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestParallelForRunsAll(t *testing.T) {
	var ran atomic.Int64
	if err := parallelFor(100, func(i int) error {
		ran.Add(1)
		return nil
	}); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if ran.Load() != 100 {
		t.Fatalf("ran %d iterations, want 100", ran.Load())
	}
}

func TestParallelForLowestIndexErrorWins(t *testing.T) {
	// Errors injected at two indices: the lower one must be reported,
	// no matter which goroutine finishes first. The high-index failure
	// returns instantly while the low-index one is delayed behind real
	// work, biasing the race toward the wrong answer if selection were
	// first-wins.
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for trial := 0; trial < 20; trial++ {
		err := parallelFor(64, func(i int) error {
			switch i {
			case 3:
				// Busy work so index 3 reports after index 60.
				s := 0.0
				for k := 0; k < 100000; k++ {
					s += float64(k)
				}
				if s < 0 {
					return fmt.Errorf("unreachable")
				}
				return errLow
			case 60:
				return errHigh
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("trial %d: got %v, want error from lowest index", trial, err)
		}
	}
}

func TestParallelForSerialPath(t *testing.T) {
	// n = 1 exercises the serial fallback, which stops at the first
	// error (lowest index by construction).
	want := errors.New("boom")
	if err := parallelFor(1, func(i int) error { return want }); !errors.Is(err, want) {
		t.Fatalf("got %v, want %v", err, want)
	}
}
