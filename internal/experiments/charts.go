package experiments

import (
	"fmt"
	"sort"
	"strings"

	"smapreduce/internal/core"
	"smapreduce/internal/metrics"
	"smapreduce/internal/telemetry"
	"smapreduce/internal/trace"
)

// Quick-look ASCII charts for the figure results, printed by
// `smrbench -charts` under each table. They are deliberately compact:
// a figure's shape should be checkable from a terminal scrollback.

const chartWidth = 40

// Chart renders each benchmark's thrashing curve as a sparkline with
// its peak slot count — the shape of Fig. 1 at a glance.
func (r *Fig1Result) Chart() string {
	var b strings.Builder
	order := []string{}
	seen := map[string]bool{}
	for _, p := range r.Points {
		if !seen[p.Benchmark] {
			seen[p.Benchmark] = true
			order = append(order, p.Benchmark)
		}
	}
	for _, bench := range order {
		var pts []metrics.Point
		for _, p := range r.Points {
			if p.Benchmark == bench {
				pts = append(pts, metrics.Point{T: float64(p.MapSlots), V: p.ThroughputMBs})
			}
		}
		sort.Slice(pts, func(i, j int) bool { return pts[i].T < pts[j].T })
		fmt.Fprintf(&b, "%-12s %s  peak at %d slots\n",
			bench, metrics.Sparkline(pts, chartWidth), r.Peak(bench))
	}
	return b.String()
}

// Chart renders per-benchmark execution-time bars for the three
// engines — Fig. 3's stacked bars flattened to totals.
func (r *Fig3Result) Chart() string {
	var b strings.Builder
	for _, bench := range Fig3Benchmarks {
		labels := make([]string, 0, 3)
		values := make([]float64, 0, 3)
		for _, engine := range core.Engines() {
			if row, ok := r.Get(bench, engine); ok {
				labels = append(labels, engine.String())
				values = append(values, row.ExecTime)
			}
		}
		if len(values) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s\n%s", bench, metrics.Bars("", labels, values, chartWidth))
	}
	return b.String()
}

// Chart renders the three progress curves as sparklines — Fig. 4.
func (r *Fig4Result) Chart() string {
	var b strings.Builder
	for _, engine := range []string{"HadoopV1", "YARN", "SMapReduce"} {
		pts := r.Curves[engine]
		if len(pts) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-12s %s  barrier at %.0f s\n",
			engine, metrics.Sparkline(pts, chartWidth), r.CrossingTime(engine, 100))
	}
	return b.String()
}

// Chart renders throughput-vs-size bars per engine — Fig. 6.
func (r *Fig6Result) Chart() string {
	var b strings.Builder
	for _, engine := range core.Engines() {
		var pts []metrics.Point
		for _, gb := range []float64{50, 100, 150, 200, 250} {
			pts = append(pts, metrics.Point{T: gb, V: r.Get(gb, engine)})
		}
		fmt.Fprintf(&b, "%-12s %s  %.0f → %.0f MB/s\n",
			engine.String(), metrics.Sparkline(pts, chartWidth), pts[0].V, pts[len(pts)-1].V)
	}
	return b.String()
}

// CaptureTimeline runs one seeded job on SMapReduce with a telemetry
// collector attached and returns the captured series: the trajectory
// view behind the paper's Figs. 5–7 time-series plots.
func CaptureTimeline(cfg Config, bench string, gb float64) (*telemetry.Collector, error) {
	return CaptureTimelineTraced(cfg, bench, gb, nil)
}

// CaptureTimelineTraced is CaptureTimeline with a span tracer attached,
// so the same seeded run also yields a Chrome trace of its tasks and
// slot decisions. A nil tracer records nothing.
func CaptureTimelineTraced(cfg Config, bench string, gb float64, tr *trace.Tracer) (*telemetry.Collector, error) {
	cfg = cfg.normalize()
	col := telemetry.NewCollector(0)
	_, err := core.Run(core.EngineSMapReduce,
		core.Options{Cluster: cfg.cluster(), Telemetry: col, Tracer: tr},
		cfg.spec(bench, gb))
	if err != nil {
		return nil, err
	}
	return col, nil
}

// timelineSeries is the subset of captured series the timeline chart
// plots: the slot targets and occupancy of Fig. 5 and the rate/balance
// trajectories of Fig. 6, in plot order.
var timelineSeries = []string{
	"slotmgr/map-target",
	"slotmgr/reduce-target",
	"cluster/running-maps",
	"cluster/running-reduces",
	"slotmgr/in-MBps",
	"slotmgr/out-MBps",
	"slotmgr/shuffle-MBps",
	"slotmgr/balance-f",
	"net/total-MBps",
	"cluster/map-input-MB",
}

// TimelineChart regenerates the Figure-5/6-style slot and rate
// timelines from a captured collector: one sparkline per series with
// its final value. Series the collector does not carry are skipped, so
// the chart also renders baseline-engine captures.
func TimelineChart(col *telemetry.Collector) string {
	var b strings.Builder
	for _, name := range timelineSeries {
		s := col.Get(name)
		if s == nil || s.Len() == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-22s %s  last %.4g\n",
			name, metrics.Sparkline(s.Points(), chartWidth), s.Last().V)
	}
	return b.String()
}

// TimelineTable renders the captured series as one wide row-per-tick
// table (the CSV export shape).
func TimelineTable(col *telemetry.Collector) *metrics.Table {
	return col.Table()
}

// Chart renders mean-execution bars — Figs. 8/9.
func (r *MultiJobResult) Chart() string {
	labels := make([]string, 0, len(r.Rows))
	values := make([]float64, 0, len(r.Rows))
	for _, row := range r.Rows {
		labels = append(labels, row.Engine.String())
		values = append(values, row.MeanExec)
	}
	return metrics.Bars(fmt.Sprintf("mean exec, 4×%s", r.Benchmark), labels, values, chartWidth)
}
