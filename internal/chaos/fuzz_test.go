package chaos

import (
	"reflect"
	"testing"
)

// FuzzParseSchedule pins the parser's safety contract: arbitrary input
// never panics, anything accepted re-parses from its canonical String
// form to the identical schedule, and the canonical form is a fixed
// point (String of the reparse is byte-identical).
func FuzzParseSchedule(f *testing.F) {
	for _, seed := range []string{
		"",
		"crash tt3 @20",
		"rejoin tt3 @60",
		"hbloss tt2 @10 for 6",
		"slow node4 @15 for 30 cpu 0.5 disk 0.5",
		"link node1 @25 for 10 egress 0.2 ingress 0",
		"crash tt0 @1; rejoin tt0 @2\n# comment\n\nhbloss tt1 @0.5 for 1e2",
		"slow node0 @0 for 0.001 cpu 1 disk 1",
		"link node7 @1e3 for 2.5e-2 egress 1 ingress 0.333",
		"crash tt1 @Inf",
		"hbloss tt1 @5 for NaN",
		"crash tt99999999999999999999 @5",
		"slow node1 @5 for 2 cpu 0x1p-2 disk 1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		s, err := ParseSchedule(text)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		canonical := s.String()
		again, err := ParseSchedule(canonical)
		if err != nil {
			t.Fatalf("canonical form rejected: %v\ninput %q\ncanonical %q", err, text, canonical)
		}
		if !reflect.DeepEqual(s, again) {
			t.Fatalf("round trip changed the schedule\ninput %q\nfirst  %+v\nsecond %+v", text, s, again)
		}
		if stable := again.String(); stable != canonical {
			t.Fatalf("String not a fixed point\ncanonical %q\nrestring  %q", canonical, stable)
		}
	})
}
