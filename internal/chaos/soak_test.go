package chaos

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"smapreduce/internal/core"
	"smapreduce/internal/mr"
	"smapreduce/internal/puma"
	"smapreduce/internal/sim"
	"smapreduce/internal/trace"
)

// The soak suite is the chaos subsystem's property-based pin: for many
// seeds it generates a random fault schedule (crash+rejoin, heartbeat
// loss, slow node, degraded link), runs a seeded two-job workload on
// the full SMapReduce stack (dynamic slot manager, tracing, event log,
// runtime invariants armed by the test binary / SMR_INVARIANTS=1), and
// asserts:
//
//   - every run terminates with the same completion counts as the
//     fault-free run of the same seed;
//   - the run is deterministic: the same seed and schedule produce
//     byte-identical event logs, Chrome traces and audit records;
//   - chaos invariants hold on the event trajectory: no task launches
//     on a tracker that is down, heartbeat-silent, blacklisted or on
//     probation, and slot targets end inside [1, Max].

const soakWorkers = 8

func soakSpecs() []mr.JobSpec {
	return []mr.JobSpec{
		{Name: "ts", Profile: puma.MustGet("terasort"), InputMB: 2048, Reduces: 6},
		{Name: "grep", Profile: puma.MustGet("grep"), InputMB: 1024, Reduces: 4, SubmitAt: 3},
	}
}

type soakRun struct {
	jobs    []*mr.Job
	events  []mr.Event
	logJSON []byte
	traceJS []byte
	audits  string
	cluster *mr.Cluster
}

func runSoak(t *testing.T, seed uint64, sched *Schedule) soakRun {
	t.Helper()
	cfg := mr.DefaultConfig()
	cfg.Workers = soakWorkers
	cfg.Net.Nodes = soakWorkers
	cfg.Seed = seed
	cfg.Policy = mr.Dynamic
	c := mr.MustNewCluster(cfg)
	mgr, err := core.NewSlotManager(core.SlotManagerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetController(mgr); err != nil {
		t.Fatal(err)
	}
	log := c.EnableEventLog(0)
	tr := trace.New(trace.Options{})
	c.EnableTracing(tr)
	mgr.AttachTracer(tr)
	if sched != nil {
		if err := sched.Apply(c); err != nil {
			t.Fatalf("seed %d: Apply: %v", seed, err)
		}
	}
	jobs, err := c.Run(soakSpecs()...)
	if err != nil {
		t.Fatalf("seed %d: Run: %v", seed, err)
	}
	var logBuf, traceBuf bytes.Buffer
	if err := log.WriteJSONL(&logBuf); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChromeJSON(&traceBuf); err != nil {
		t.Fatal(err)
	}
	var audits strings.Builder
	for _, a := range mgr.Explain() {
		audits.WriteString(a.String())
		audits.WriteByte('\n')
	}
	return soakRun{
		jobs: jobs, events: log.Events(),
		logJSON: logBuf.Bytes(), traceJS: traceBuf.Bytes(),
		audits: audits.String(), cluster: c,
	}
}

// checkChaosTrajectory replays the event log and fails on any task
// launch (including speculative backups) landing on a tracker inside a
// down, heartbeat-lost, or blacklist/probation window. The log records
// emission order, so same-timestamp sequences are checked exactly as
// they happened.
func checkChaosTrajectory(t *testing.T, seed uint64, events []mr.Event) {
	t.Helper()
	type state struct{ down, hbLost, black bool }
	states := make([]state, soakWorkers)
	for _, e := range events {
		if e.Tracker < 0 || e.Tracker >= soakWorkers {
			continue
		}
		s := &states[e.Tracker]
		switch e.Kind {
		case mr.EvTrackerDown:
			s.down = true
		case mr.EvTrackerRejoin:
			s.down = false
		case mr.EvTrackerHBLost:
			s.hbLost = true
		case mr.EvTrackerHBRestored:
			s.hbLost = false
		case mr.EvTrackerBlacklisted:
			s.black = true
		case mr.EvTrackerCleared:
			s.black = false
		case mr.EvTaskStarted, mr.EvSpeculative:
			if s.down || s.hbLost || s.black {
				t.Fatalf("seed %d: launch on unavailable tracker %d (down=%v hbLost=%v blacklisted=%v): %+v",
					seed, e.Tracker, s.down, s.hbLost, s.black, e)
			}
		}
	}
}

func soakSeed(t *testing.T, seed uint64) {
	t.Helper()

	// Fault-free baseline fixes the completion counts and sizes the
	// fault horizon so every fault lands while work is in flight.
	base := runSoak(t, seed, nil)
	horizon := 0.0
	for _, j := range base.jobs {
		if !j.Finished() {
			t.Fatalf("seed %d: fault-free job %s unfinished", seed, j.Spec.Name)
		}
		if j.FinishedAt > horizon {
			horizon = j.FinishedAt
		}
	}
	horizon *= 0.7
	if horizon < 1 {
		horizon = 1
	}
	sched := Generate(sim.NewRand(seed), soakWorkers, horizon)

	a := runSoak(t, seed, &sched)
	b := runSoak(t, seed, &sched)

	// Determinism: byte-identical artifacts across the two runs.
	if !bytes.Equal(a.logJSON, b.logJSON) {
		t.Fatalf("seed %d: event logs differ between identical runs\nschedule:\n%s", seed, sched)
	}
	if !bytes.Equal(a.traceJS, b.traceJS) {
		t.Fatalf("seed %d: traces differ between identical runs\nschedule:\n%s", seed, sched)
	}
	if a.audits != b.audits {
		t.Fatalf("seed %d: audit records differ between identical runs\nschedule:\n%s", seed, sched)
	}

	// Termination with fault-free completion counts.
	if len(a.jobs) != len(base.jobs) {
		t.Fatalf("seed %d: %d jobs, fault-free ran %d", seed, len(a.jobs), len(base.jobs))
	}
	for i, j := range a.jobs {
		bj := base.jobs[i]
		if !j.Finished() {
			t.Fatalf("seed %d: job %s did not finish under schedule:\n%s", seed, j.Spec.Name, sched)
		}
		if j.MapsDone() != bj.MapsDone() || j.NumMaps() != bj.NumMaps() ||
			j.ReducesDone() != bj.ReducesDone() || j.NumReduces() != bj.NumReduces() {
			t.Fatalf("seed %d: job %s completion counts %d/%d maps %d/%d reduces, fault-free %d/%d maps %d/%d reduces",
				seed, j.Spec.Name, j.MapsDone(), j.NumMaps(), j.ReducesDone(), j.NumReduces(),
				bj.MapsDone(), bj.NumMaps(), bj.ReducesDone(), bj.NumReduces())
		}
	}

	// The schedule was actually exercised: every fault kind left its
	// mark and none degraded to a fault error.
	counts := map[mr.EventKind]int{}
	for _, e := range a.events {
		counts[e.Kind]++
	}
	for _, kind := range []mr.EventKind{
		mr.EvTrackerDown, mr.EvTrackerRejoin, mr.EvTrackerHBLost,
		mr.EvTrackerHBRestored, mr.EvNodeDegraded, mr.EvNodeRestored,
		mr.EvLinkDegraded, mr.EvLinkRestored,
	} {
		if counts[kind] == 0 {
			t.Fatalf("seed %d: no %s event; schedule not exercised:\n%s", seed, kind, sched)
		}
	}
	if counts[mr.EvFaultError] != 0 {
		t.Fatalf("seed %d: %d fault errors on a generated schedule:\n%s", seed, counts[mr.EvFaultError], sched)
	}

	checkChaosTrajectory(t, seed, a.events)

	// Rejoined and healthy trackers end schedulable with sane targets;
	// slot targets stay inside [1, Max] everywhere.
	cfg := a.cluster.Config()
	for _, tt := range a.cluster.Trackers() {
		if tt.Failed() {
			t.Fatalf("seed %d: tracker %d still failed after rejoin", seed, tt.ID())
		}
		if tt.MapSlots() < 1 || tt.MapSlots() > cfg.MaxMapSlots {
			t.Fatalf("seed %d: tracker %d map target %d outside [1,%d]", seed, tt.ID(), tt.MapSlots(), cfg.MaxMapSlots)
		}
		if tt.ReduceSlots() < 1 || tt.ReduceSlots() > cfg.MaxReduceSlots {
			t.Fatalf("seed %d: tracker %d reduce target %d outside [1,%d]", seed, tt.ID(), tt.ReduceSlots(), cfg.MaxReduceSlots)
		}
		if tt.RunningMaps() != 0 || tt.RunningReduces() != 0 {
			t.Fatalf("seed %d: tracker %d still holds tasks after shutdown", seed, tt.ID())
		}
	}
}

// TestChaosSoak is the full 50-seed property soak; -short runs a
// subset. Each seed performs three complete cluster runs (fault-free
// baseline plus two identical chaos runs).
func TestChaosSoak(t *testing.T) {
	seeds := 50
	if testing.Short() {
		seeds = 8
	}
	for seed := 1; seed <= seeds; seed++ {
		seed := uint64(seed)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			soakSeed(t, seed)
		})
	}
}
