package chaos

import (
	"reflect"
	"strings"
	"testing"

	"smapreduce/internal/mr"
	"smapreduce/internal/puma"
	"smapreduce/internal/sim"
)

func TestParseScheduleBasics(t *testing.T) {
	text := `
# mixed schedule, one of each kind
crash tt3 @20
rejoin tt3 @60   # back with an empty disk
hbloss tt2 @10 for 6
slow node4 @15 for 30 cpu 0.5 disk 0.5
link node1 @25 for 10 egress 0.2 ingress 0
`
	s, err := ParseSchedule(text)
	if err != nil {
		t.Fatal(err)
	}
	want := []Fault{
		{Kind: Crash, Target: 3, At: 20},
		{Kind: Rejoin, Target: 3, At: 60},
		{Kind: HBLoss, Target: 2, At: 10, Duration: 6},
		{Kind: Slow, Target: 4, At: 15, Duration: 30, CPUScale: 0.5, DiskScale: 0.5},
		{Kind: Link, Target: 1, At: 25, Duration: 10, EgressScale: 0.2, IngressScale: 0},
	}
	if !reflect.DeepEqual(s.Faults, want) {
		t.Fatalf("parsed %+v\nwant %+v", s.Faults, want)
	}
	if err := s.Validate(8); err != nil {
		t.Fatal(err)
	}
}

func TestParseScheduleSemicolons(t *testing.T) {
	s, err := ParseSchedule("crash tt0 @1; rejoin tt0 @2 # same line\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Faults) != 2 || s.Faults[1].Kind != Rejoin {
		t.Fatalf("semicolon split failed: %+v", s.Faults)
	}
}

func TestParseScheduleSemicolonInsideComment(t *testing.T) {
	// A comment runs to end of line; a ';' inside it must not start a
	// new statement.
	s, err := ParseSchedule("crash tt0 @1 # dies; tasks requeue\nrejoin tt0 @2\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Faults) != 2 {
		t.Fatalf("want 2 faults, got %+v", s.Faults)
	}
}

func TestParseScheduleRoundTrip(t *testing.T) {
	texts := []string{
		"crash tt3 @20\nrejoin tt3 @60\n",
		"hbloss tt2 @10.25 for 6.125\n",
		"slow node4 @15 for 30 cpu 0.5 disk 0.9999\n",
		"link node1 @25 for 10 egress 0.2 ingress 0\n",
		// Awkward but valid floats must survive the trip too.
		"hbloss tt0 @1e-3 for 1e300\n",
	}
	for _, text := range texts {
		s, err := ParseSchedule(text)
		if err != nil {
			t.Fatalf("%q: %v", text, err)
		}
		again, err := ParseSchedule(s.String())
		if err != nil {
			t.Fatalf("reparse of %q: %v", s.String(), err)
		}
		if !reflect.DeepEqual(s, again) {
			t.Fatalf("round trip of %q changed the schedule:\n%+v\n%+v", text, s, again)
		}
	}
}

func TestParseScheduleErrors(t *testing.T) {
	bad := []string{
		"explode tt1 @5",                             // unknown kind
		"crash tt1",                                  // missing time
		"crash tt1 @5 extra",                         // trailing token
		"crash node1 @5",                             // wrong target prefix
		"crash tt-1 @5",                              // negative target
		"crash tt+1 @5",                              // signed target
		"crash tt1 5",                                // missing @
		"crash tt1 @-5",                              // negative time
		"crash tt1 @NaN",                             // non-finite time
		"crash tt1 @Inf",                             // non-finite time
		"hbloss tt1 @5 for 0",                        // zero duration
		"hbloss tt1 @5 for -2",                       // negative duration
		"hbloss tt1 @5 during 2",                     // bad keyword
		"slow node1 @5 for 2 cpu 0 disk 0.5",         // cpu scale out of (0,1]
		"slow node1 @5 for 2 cpu 0.5 disk 1.5",       // disk scale out of (0,1]
		"slow node1 @5 for 2 disk 0.5 cpu 0.5",       // keywords out of order
		"link node1 @5 for 2 egress -0.1 ingress 1",  // egress below 0
		"link node1 @5 for 2 egress 1 ingress 1.001", // ingress above 1
		"crash tt99999999999999999999 @5",            // target overflows int
	}
	for _, text := range bad {
		if _, err := ParseSchedule(text); err == nil {
			t.Errorf("%q: accepted, want error", text)
		}
	}
}

func TestValidateCrashRejoinPairing(t *testing.T) {
	cases := []struct {
		name string
		s    Schedule
		ok   bool
	}{
		{"rejoin without crash", Schedule{Faults: []Fault{{Kind: Rejoin, Target: 1, At: 5}}}, false},
		{"double crash", Schedule{Faults: []Fault{
			{Kind: Crash, Target: 1, At: 5}, {Kind: Crash, Target: 1, At: 9}}}, false},
		{"crash rejoin crash", Schedule{Faults: []Fault{
			{Kind: Crash, Target: 1, At: 5}, {Kind: Rejoin, Target: 1, At: 9},
			{Kind: Crash, Target: 1, At: 12}}}, true},
		{"out of order text, valid in time order", Schedule{Faults: []Fault{
			{Kind: Rejoin, Target: 1, At: 9}, {Kind: Crash, Target: 1, At: 5}}}, true},
		{"target out of range", Schedule{Faults: []Fault{{Kind: Crash, Target: 8, At: 5}}}, false},
		{"crash without rejoin is fine", Schedule{Faults: []Fault{{Kind: Crash, Target: 1, At: 5}}}, true},
	}
	for _, tc := range cases {
		err := tc.s.Validate(8)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: accepted, want error", tc.name)
		}
	}
}

func TestGenerateValidAndDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := Generate(sim.NewRand(uint64(seed)), 8, 40)
		b := Generate(sim.NewRand(uint64(seed)), 8, 40)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: Generate not deterministic:\n%v\n%v", seed, a, b)
		}
		if err := a.Validate(8); err != nil {
			t.Fatalf("seed %d: generated schedule invalid: %v\n%s", seed, err, a)
		}
		kinds := map[Kind]bool{}
		var crash, rejoin Fault
		for _, f := range a.Faults {
			kinds[f.Kind] = true
			switch f.Kind {
			case Crash:
				crash = f
			case Rejoin:
				rejoin = f
			}
		}
		for _, k := range []Kind{Crash, Rejoin, HBLoss, Slow, Link} {
			if !kinds[k] {
				t.Fatalf("seed %d: schedule misses kind %v:\n%s", seed, k, a)
			}
		}
		if rejoin.Target != crash.Target || rejoin.At <= crash.At {
			t.Fatalf("seed %d: bad crash/rejoin pair: %v then %v", seed, crash, rejoin)
		}
		// The schedule must survive its own text form.
		rt, err := ParseSchedule(a.String())
		if err != nil || !reflect.DeepEqual(a, rt) {
			t.Fatalf("seed %d: generated schedule does not round-trip (%v):\n%s", seed, err, a)
		}
	}
}

func TestApplyRejectsInvalid(t *testing.T) {
	c := mr.MustNewCluster(mr.DefaultConfig())
	s := Schedule{Faults: []Fault{{Kind: Crash, Target: 99, At: 5}}}
	if err := s.Apply(c); err == nil {
		t.Fatal("out-of-range target applied")
	}
}

func TestApplySchedulesFaults(t *testing.T) {
	cfg := mr.DefaultConfig()
	cfg.Workers = 8
	cfg.Net.Nodes = 8
	c := mr.MustNewCluster(cfg)
	log := c.EnableEventLog(0)
	s, err := ParseSchedule("crash tt3 @2\nrejoin tt3 @6\nslow node4 @1 for 2 cpu 0.5 disk 0.5\nlink node1 @1 for 2 egress 0.5 ingress 0.5\nhbloss tt2 @1 for 2\n")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(c); err != nil {
		t.Fatal(err)
	}
	jobs, err := c.Run(mr.JobSpec{Name: "g", Profile: puma.MustGet("grep"), InputMB: 512, Reduces: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !jobs[0].Finished() {
		t.Fatal("job did not finish under the schedule")
	}
	for _, kind := range []mr.EventKind{
		mr.EvTrackerDown, mr.EvTrackerRejoin, mr.EvNodeDegraded, mr.EvNodeRestored,
		mr.EvLinkDegraded, mr.EvLinkRestored, mr.EvTrackerHBLost, mr.EvTrackerHBRestored,
	} {
		if len(log.Filter(kind)) != 1 {
			t.Fatalf("event %s: got %d, want 1\nlog: %+v", kind, len(log.Filter(kind)), log.Events())
		}
	}
	if n := len(log.Filter(mr.EvFaultError)); n != 0 {
		t.Fatalf("%d fault errors on a valid schedule", n)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Crash: "crash", Rejoin: "rejoin", HBLoss: "hbloss", Slow: "slow", Link: "link"} {
		if k.String() != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Fatal("unknown kind string")
	}
}
