// Package chaos is the deterministic fault-injection subsystem: it
// compiles a Schedule of typed faults — tracker crash and rejoin,
// transient heartbeat loss (with blacklisting and probation on the mr
// side), slow-node service degradation, and link/partition faults —
// onto the simulation clock of an mr.Cluster.
//
// Schedules are reproducible artifacts: a plain-text format
// (ParseSchedule / Schedule.String round-trip losslessly) feeds the
// `smrsim -chaos` flag, and Generate derives a randomized but fully
// deterministic schedule from a seed for the property-based soak
// suite. Every fault application emits structured events, trace
// instants and telemetry through the cluster's existing observability
// layers; a fault that cannot be applied when its event fires (e.g.
// crashing an already-dead tracker) becomes an erroring event-log
// instant, never a panic.
package chaos

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"smapreduce/internal/mr"
	"smapreduce/internal/sim"
)

// Kind enumerates the fault taxonomy.
type Kind int

const (
	// Crash kills a tracker permanently-until-rejoin: running tasks
	// abort, committed outputs on its disk are lost (mr.FailTracker).
	Crash Kind = iota
	// Rejoin re-registers a crashed tracker with an empty disk, fresh
	// rate windows and re-seeded slot targets (mr.RecoverTracker).
	Rejoin
	// HBLoss silences a tracker's heartbeats for Duration seconds while
	// its tasks keep running; prolonged silence blacklists the node and
	// recovery serves a backed-off probation.
	HBLoss
	// Slow scales a node's CPU and disk service rates by
	// CPUScale/DiskScale in (0,1] for Duration seconds.
	Slow
	// Link scales a node's fabric access links by EgressScale and
	// IngressScale in [0,1] for Duration seconds; 0 severs a direction
	// (flows stall and resume on restore).
	Link
)

func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Rejoin:
		return "rejoin"
	case HBLoss:
		return "hbloss"
	case Slow:
		return "slow"
	case Link:
		return "link"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Fault is one scheduled fault. Target is a tracker id for Crash,
// Rejoin and HBLoss, a node id for Slow and Link (trackers and nodes
// are one-to-one in this runtime, but the distinction matters: tracker
// faults hit the daemon, node faults hit the hardware under it).
type Fault struct {
	Kind     Kind
	Target   int
	At       float64 // virtual time the fault fires
	Duration float64 // HBLoss, Slow, Link: length of the incident

	CPUScale, DiskScale       float64 // Slow
	EgressScale, IngressScale float64 // Link
}

// num renders a float the way the text format expects: shortest
// decimal that re-parses to the same value, so String/Parse round-trip
// at full precision.
func num(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// String renders the fault in the schedule text format.
func (f Fault) String() string {
	switch f.Kind {
	case Crash, Rejoin:
		return fmt.Sprintf("%s tt%d @%s", f.Kind, f.Target, num(f.At))
	case HBLoss:
		return fmt.Sprintf("hbloss tt%d @%s for %s", f.Target, num(f.At), num(f.Duration))
	case Slow:
		return fmt.Sprintf("slow node%d @%s for %s cpu %s disk %s",
			f.Target, num(f.At), num(f.Duration), num(f.CPUScale), num(f.DiskScale))
	case Link:
		return fmt.Sprintf("link node%d @%s for %s egress %s ingress %s",
			f.Target, num(f.At), num(f.Duration), num(f.EgressScale), num(f.IngressScale))
	}
	return fmt.Sprintf("?%d", int(f.Kind))
}

// Schedule is an ordered list of faults. Order matters only for faults
// sharing the same At (they apply in list order); otherwise the clock
// orders by time.
type Schedule struct {
	Faults []Fault
}

// String renders the schedule in the text format ParseSchedule reads:
// one fault per line, trailing newline. ParseSchedule(s.String())
// reproduces s exactly.
func (s Schedule) String() string {
	var b strings.Builder
	for _, f := range s.Faults {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// ParseSchedule reads the plain-text schedule format: one fault per
// line (or semicolon-separated), '#' starts a comment, blank lines are
// skipped.
//
//	crash tt3 @20
//	rejoin tt3 @60
//	hbloss tt2 @10 for 6
//	slow node4 @15 for 30 cpu 0.5 disk 0.5
//	link node1 @25 for 10 egress 0.2 ingress 0
//
// Times are non-negative seconds of virtual time, durations positive;
// slow scales lie in (0,1], link scales in [0,1] (0 severs the
// direction). Parsing is purely syntactic — targets are bounds-checked
// against a concrete cluster by Validate/Apply.
func ParseSchedule(text string) (Schedule, error) {
	var s Schedule
	lineNo := 0
	for _, rawLine := range strings.Split(text, "\n") {
		lineNo++
		// A comment runs to end of line, so strip it before splitting
		// on semicolons — a ';' inside a comment is commentary too.
		if i := strings.IndexByte(rawLine, '#'); i >= 0 {
			rawLine = rawLine[:i]
		}
		for _, raw := range strings.Split(rawLine, ";") {
			fields := strings.Fields(raw)
			if len(fields) == 0 {
				continue
			}
			f, err := parseFault(fields, lineNo)
			if err != nil {
				return Schedule{}, err
			}
			s.Faults = append(s.Faults, f)
		}
	}
	return s, nil
}

func parseFault(fields []string, line int) (Fault, error) {
	var f Fault
	targetPrefix := "tt"
	switch fields[0] {
	case "crash":
		f.Kind = Crash
	case "rejoin":
		f.Kind = Rejoin
	case "hbloss":
		f.Kind = HBLoss
	case "slow":
		f.Kind = Slow
		targetPrefix = "node"
	case "link":
		f.Kind = Link
		targetPrefix = "node"
	default:
		return f, fmt.Errorf("chaos: line %d: unknown fault kind %q", line, fields[0])
	}

	want := map[Kind]int{Crash: 3, Rejoin: 3, HBLoss: 5, Slow: 9, Link: 9}[f.Kind]
	if len(fields) != want {
		return f, fmt.Errorf("chaos: line %d: %s takes %d tokens, got %d", line, f.Kind, want, len(fields))
	}

	rest, ok := strings.CutPrefix(fields[1], targetPrefix)
	if !ok {
		return f, fmt.Errorf("chaos: line %d: %s target must be %s<N>, got %q", line, f.Kind, targetPrefix, fields[1])
	}
	id, err := strconv.Atoi(rest)
	if err != nil || id < 0 || rest[0] == '+' {
		return f, fmt.Errorf("chaos: line %d: bad %s target %q", line, f.Kind, fields[1])
	}
	f.Target = id

	at, ok := strings.CutPrefix(fields[2], "@")
	if !ok {
		return f, fmt.Errorf("chaos: line %d: expected @<time>, got %q", line, fields[2])
	}
	if f.At, err = parseNum(at, "time", line); err != nil {
		return f, err
	}
	if f.At < 0 {
		return f, fmt.Errorf("chaos: line %d: time %v must be >= 0", line, f.At)
	}
	if f.Kind == Crash || f.Kind == Rejoin {
		return f, nil
	}

	if fields[3] != "for" {
		return f, fmt.Errorf("chaos: line %d: expected 'for', got %q", line, fields[3])
	}
	if f.Duration, err = parseNum(fields[4], "duration", line); err != nil {
		return f, err
	}
	if f.Duration <= 0 {
		return f, fmt.Errorf("chaos: line %d: duration %v must be positive", line, f.Duration)
	}

	switch f.Kind {
	case HBLoss:
		return f, nil
	case Slow:
		if f.CPUScale, err = parseKeyed(fields[5], fields[6], "cpu", line); err != nil {
			return f, err
		}
		if f.DiskScale, err = parseKeyed(fields[7], fields[8], "disk", line); err != nil {
			return f, err
		}
		if f.CPUScale <= 0 || f.CPUScale > 1 || f.DiskScale <= 0 || f.DiskScale > 1 {
			return f, fmt.Errorf("chaos: line %d: slow scales (%v, %v) must be in (0,1]", line, f.CPUScale, f.DiskScale)
		}
	case Link:
		if f.EgressScale, err = parseKeyed(fields[5], fields[6], "egress", line); err != nil {
			return f, err
		}
		if f.IngressScale, err = parseKeyed(fields[7], fields[8], "ingress", line); err != nil {
			return f, err
		}
		if f.EgressScale < 0 || f.EgressScale > 1 || f.IngressScale < 0 || f.IngressScale > 1 {
			return f, fmt.Errorf("chaos: line %d: link scales (%v, %v) must be in [0,1]", line, f.EgressScale, f.IngressScale)
		}
	}
	return f, nil
}

func parseKeyed(key, val, want string, line int) (float64, error) {
	if key != want {
		return 0, fmt.Errorf("chaos: line %d: expected %q, got %q", line, want, key)
	}
	return parseNum(val, want, line)
}

func parseNum(tok, what string, line int) (float64, error) {
	v, err := strconv.ParseFloat(tok, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("chaos: line %d: bad %s %q", line, what, tok)
	}
	return v, nil
}

// Validate checks the schedule against a cluster of the given worker
// count: targets in range, parameters in range, and crash/rejoin
// pairing consistent per tracker when replayed in time order (a rejoin
// needs a preceding crash; a crash needs the tracker alive). It does
// not check cross-fault interactions the runtime tolerates on its own
// (e.g. a heartbeat loss landing on a crashed tracker degrades to an
// event-log fault error at run time).
func (s Schedule) Validate(workers int) error {
	for i, f := range s.Faults {
		if f.Target < 0 || f.Target >= workers {
			return fmt.Errorf("chaos: fault %d (%s): target %d outside [0,%d)", i, f.Kind, f.Target, workers)
		}
		if f.At < 0 || math.IsNaN(f.At) || math.IsInf(f.At, 0) {
			return fmt.Errorf("chaos: fault %d (%s): time %v invalid", i, f.Kind, f.At)
		}
		switch f.Kind {
		case Crash, Rejoin:
		case HBLoss:
			if f.Duration <= 0 || math.IsInf(f.Duration, 0) || math.IsNaN(f.Duration) {
				return fmt.Errorf("chaos: fault %d (hbloss): duration %v must be positive", i, f.Duration)
			}
		case Slow:
			if f.Duration <= 0 || math.IsInf(f.Duration, 0) || math.IsNaN(f.Duration) {
				return fmt.Errorf("chaos: fault %d (slow): duration %v must be positive", i, f.Duration)
			}
			if f.CPUScale <= 0 || f.CPUScale > 1 || f.DiskScale <= 0 || f.DiskScale > 1 {
				return fmt.Errorf("chaos: fault %d (slow): scales (%v, %v) must be in (0,1]", i, f.CPUScale, f.DiskScale)
			}
		case Link:
			if f.Duration <= 0 || math.IsInf(f.Duration, 0) || math.IsNaN(f.Duration) {
				return fmt.Errorf("chaos: fault %d (link): duration %v must be positive", i, f.Duration)
			}
			if f.EgressScale < 0 || f.EgressScale > 1 || f.IngressScale < 0 || f.IngressScale > 1 {
				return fmt.Errorf("chaos: fault %d (link): scales (%v, %v) must be in [0,1]", i, f.EgressScale, f.IngressScale)
			}
		default:
			return fmt.Errorf("chaos: fault %d: unknown kind %d", i, int(f.Kind))
		}
	}
	// Replay crash/rejoin pairs in time order (stable for equal times,
	// matching how same-time clock events apply in list order).
	order := make([]int, 0, len(s.Faults))
	for i := range s.Faults {
		if k := s.Faults[i].Kind; k == Crash || k == Rejoin {
			order = append(order, i)
		}
	}
	for a := 1; a < len(order); a++ { // insertion sort: stable, no deps
		for b := a; b > 0 && s.Faults[order[b-1]].At > s.Faults[order[b]].At; b-- {
			order[b-1], order[b] = order[b], order[b-1]
		}
	}
	failed := map[int]bool{}
	for _, i := range order {
		f := s.Faults[i]
		switch f.Kind {
		case Crash:
			if failed[f.Target] {
				return fmt.Errorf("chaos: fault %d: crash of tt%d at %v, already crashed", i, f.Target, f.At)
			}
			failed[f.Target] = true
		case Rejoin:
			if !failed[f.Target] {
				return fmt.Errorf("chaos: fault %d: rejoin of tt%d at %v without a preceding crash", i, f.Target, f.At)
			}
			failed[f.Target] = false
		}
	}
	return nil
}

// Apply validates the schedule against c and arms every fault on the
// cluster's clock. Call before Run.
func (s Schedule) Apply(c *mr.Cluster) error {
	if err := s.Validate(c.Config().Workers); err != nil {
		return err
	}
	for _, f := range s.Faults {
		switch f.Kind {
		case Crash:
			c.ScheduleFailure(f.Target, f.At)
		case Rejoin:
			c.ScheduleRecovery(f.Target, f.At)
		case HBLoss:
			c.ScheduleHeartbeatLoss(f.Target, f.At, f.Duration)
		case Slow:
			c.ScheduleNodeDegrade(f.Target, f.At, f.Duration, f.CPUScale, f.DiskScale)
		case Link:
			c.ScheduleLinkDegrade(f.Target, f.At, f.Duration, f.EgressScale, f.IngressScale)
		}
	}
	return nil
}

// Generate derives a random valid schedule from rng, exercising every
// fault kind: one crash/rejoin pair, one heartbeat loss on a different
// tracker, one slow node, and one link fault, with times spread over
// [0, horizon). The same rng state always yields the same schedule.
//
// The generator keeps at most one tracker crashed at a time, so with
// the default DFS replication (3) no input split can lose all its
// replicas — data-loss scenarios are a deliberate non-goal of the soak
// (the runtime treats them as fatal).
//
// Generated values are rounded to milliseconds/percent so schedules
// stay readable when embedded in docs or regenerated from their text
// form; rounding never pushes a duration to zero for horizon >= 1.
func Generate(rng *sim.Rand, workers int, horizon float64) Schedule {
	if workers < 4 {
		panic(fmt.Sprintf("chaos: Generate needs >= 4 workers, got %d", workers))
	}
	if horizon < 1 || math.IsInf(horizon, 0) || math.IsNaN(horizon) {
		panic(fmt.Sprintf("chaos: Generate horizon %v must be >= 1 and finite", horizon))
	}
	r3 := func(v float64) float64 { return math.Round(v*1000) / 1000 }
	span := func(lo, hi float64) float64 { return r3(horizon * (lo + (hi-lo)*rng.Float64())) }
	pct := func(lo, hi float64) float64 { return r3(lo + (hi-lo)*rng.Float64()) }

	crashed := rng.Intn(workers)
	lossy := rng.Intn(workers - 1)
	if lossy >= crashed {
		lossy++ // distinct from the crashed tracker, uniform over the rest
	}
	crashAt := span(0.05, 0.35)
	rejoinAt := r3(crashAt + span(0.15, 0.4))

	egress, ingress := pct(0.2, 0.9), pct(0.2, 0.9)
	switch rng.Intn(4) {
	case 0:
		egress = 0 // severed uplink
	case 1:
		ingress = 0 // severed downlink
	}

	return Schedule{Faults: []Fault{
		{Kind: Crash, Target: crashed, At: crashAt},
		{Kind: Rejoin, Target: crashed, At: rejoinAt},
		{Kind: HBLoss, Target: lossy, At: span(0.1, 0.5), Duration: span(0.02, 0.15)},
		{Kind: Slow, Target: rng.Intn(workers), At: span(0.1, 0.5), Duration: span(0.1, 0.3),
			CPUScale: pct(0.3, 0.9), DiskScale: pct(0.3, 0.9)},
		{Kind: Link, Target: rng.Intn(workers), At: span(0.1, 0.5), Duration: span(0.05, 0.2),
			EgressScale: egress, IngressScale: ingress},
	}}
}
