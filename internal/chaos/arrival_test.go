package chaos

import (
	"bytes"
	"testing"

	"smapreduce/internal/arrival"
	"smapreduce/internal/mr"
	"smapreduce/internal/puma"
)

// Mid-run job submission interacting with injected faults: jobs that
// arrive while a tracker is crashed, blacklisted or degraded must be
// admitted without panicking, never land a task on a down tracker, and
// leave the cluster in a clean final state.

func chaosArrivalConfig() mr.Config {
	cfg := mr.DefaultConfig()
	cfg.Workers = 8
	cfg.Net.Nodes = 8
	return cfg
}

// chaosArrivalSpecs arrives one job before the faults, several during
// the incident windows, and a straggler after recovery.
func chaosArrivalSpecs() []mr.JobSpec {
	mk := func(name string, at float64, mb float64) mr.JobSpec {
		return mr.JobSpec{
			Name: name, Profile: puma.MustGet("grep"), InputMB: mb, Reduces: 4,
			SubmitAt: at, Tenant: "batch",
		}
	}
	return []mr.JobSpec{
		mk("pre", 0, 1024),
		mk("during-crash", 12, 512),    // tt3 is down, tt2 silent
		mk("during-blacklist", 25, 512), // tt2 blacklisted by now
		mk("post", 90, 512),            // after rejoin and probation
	}
}

func TestMidRunSubmissionDuringFaults(t *testing.T) {
	c := mr.MustNewCluster(chaosArrivalConfig())
	log := c.EnableEventLog(0)
	sched, err := ParseSchedule(`
crash tt3 @10
hbloss tt2 @8 for 40
rejoin tt3 @60
slow node5 @20 for 30 cpu 0.5 disk 0.5
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(8); err != nil {
		t.Fatal(err)
	}
	if err := sched.Apply(c); err != nil {
		t.Fatal(err)
	}
	jobs, err := c.RunArrivals(arrival.FromSpecs(chaosArrivalSpecs()))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 4 {
		t.Fatalf("admitted %d jobs, want 4", len(jobs))
	}
	for _, j := range jobs {
		if !j.Finished() {
			t.Fatalf("job %s unfinished after faults", j.Spec.Name)
		}
	}

	// Replay the event log against the fault timeline: no task may
	// start on tt3 while it is down [10, 60).
	downAt, upAt := -1.0, -1.0
	for _, e := range log.Events() {
		switch e.Kind {
		case mr.EvTrackerDown:
			if e.Tracker == 3 {
				downAt = e.At
			}
		case mr.EvTrackerRejoin:
			if e.Tracker == 3 {
				upAt = e.At
			}
		case mr.EvTaskStarted, mr.EvSpeculative:
			if e.Tracker == 3 && downAt >= 0 && upAt < 0 {
				t.Fatalf("task %s/%s started on crashed tt3 at t=%v", e.Job, e.Task, e.At)
			}
		}
	}
	if downAt < 0 || upAt < 0 {
		t.Fatalf("fault events missing: down=%v rejoin=%v", downAt, upAt)
	}

	// Clean final state: no tracker holds tasks, tenant counters are
	// back to zero.
	for _, tt := range c.Trackers() {
		if tt.RunningMaps() != 0 || tt.RunningReduces() != 0 {
			t.Fatalf("tracker %d still holds tasks", tt.ID())
		}
	}
	for _, name := range c.TenantNames() {
		if n := c.TenantRunning(name); n != 0 {
			t.Fatalf("tenant %s ends with %d running attempts", name, n)
		}
	}
}

func TestMidRunSubmissionDuringFaultsDeterministic(t *testing.T) {
	run := func() []byte {
		c := mr.MustNewCluster(chaosArrivalConfig())
		log := c.EnableEventLog(0)
		sched, err := ParseSchedule("crash tt3 @10\nhbloss tt2 @8 for 40\nrejoin tt3 @60\n")
		if err != nil {
			t.Fatal(err)
		}
		if err := sched.Apply(c); err != nil {
			t.Fatal(err)
		}
		if _, err := c.RunArrivals(arrival.FromSpecs(chaosArrivalSpecs())); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := log.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	ref := run()
	for i := 0; i < 3; i++ {
		if got := run(); !bytes.Equal(got, ref) {
			t.Fatalf("run %d diverged under faults + open arrivals", i)
		}
	}
}
