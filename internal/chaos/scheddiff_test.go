package chaos

import (
	"bytes"
	"fmt"
	"testing"

	"smapreduce/internal/sim"
)

// schedDiffSeed runs one chaos seed under the timing wheel and again
// in heap-only scheduler mode (SMR_HEAP_SCHED=1, read at cluster
// construction) and requires byte-identical artifacts. The fault
// schedule drives every self-rescheduling chain through its edge
// cases: heartbeat cancel + resume, probation timers, slowdown
// windows, controller and sampler ticks across tracker churn.
func schedDiffSeed(t *testing.T, seed uint64) {
	t.Helper()

	base := runSoak(t, seed, nil)
	horizon := 0.0
	for _, j := range base.jobs {
		if j.FinishedAt > horizon {
			horizon = j.FinishedAt
		}
	}
	horizon *= 0.7
	if horizon < 1 {
		horizon = 1
	}
	sched := Generate(sim.NewRand(seed), soakWorkers, horizon)

	wheel := runSoak(t, seed, &sched)
	t.Setenv("SMR_HEAP_SCHED", "1")
	heap := runSoak(t, seed, &sched)

	if !bytes.Equal(wheel.logJSON, heap.logJSON) {
		t.Fatalf("seed %d: event logs differ between wheel and heap-only scheduler\nschedule:\n%s", seed, sched)
	}
	if !bytes.Equal(wheel.traceJS, heap.traceJS) {
		t.Fatalf("seed %d: traces differ between wheel and heap-only scheduler\nschedule:\n%s", seed, sched)
	}
	if wheel.audits != heap.audits {
		t.Fatalf("seed %d: audit records differ between wheel and heap-only scheduler\nschedule:\n%s", seed, sched)
	}
}

// TestSoakHeapSchedDifferential pins the scheduler backend on the
// chaos workload: wheel and heap-only runs of the same seeded fault
// schedule must emit byte-identical logs, traces and audits.
func TestSoakHeapSchedDifferential(t *testing.T) {
	seeds := 6
	if testing.Short() {
		seeds = 2
	}
	for seed := 1; seed <= seeds; seed++ {
		seed := uint64(seed)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			schedDiffSeed(t, seed)
		})
	}
}
