// Package metrics provides the time-series recorders used to plot the
// paper's figures: sampled job progress (Fig. 4), rate series, and
// labelled counters.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one sample of a time series.
type Point struct {
	T Time
	V float64
}

// Time aliases the simulation time unit (seconds).
type Time = float64

// Series is an append-only time series. Samples must be appended in
// non-decreasing time order; Add panics otherwise, because out-of-order
// samples always indicate a recorder wiring bug.
type Series struct {
	Name   string
	points []Point
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends a sample.
func (s *Series) Add(t Time, v float64) {
	if n := len(s.points); n > 0 && t < s.points[n-1].T {
		panic(fmt.Sprintf("metrics: series %q sample at %v before last %v", s.Name, t, s.points[n-1].T))
	}
	s.points = append(s.points, Point{T: t, V: v})
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.points) }

// Points returns the underlying samples (not a copy; callers must not
// mutate).
func (s *Series) Points() []Point { return s.points }

// Last returns the most recent sample, or a zero Point if empty.
func (s *Series) Last() Point {
	if len(s.points) == 0 {
		return Point{}
	}
	return s.points[len(s.points)-1]
}

// At returns the value at time t by step interpolation (the value of
// the latest sample at or before t). Before the first sample it
// returns 0.
func (s *Series) At(t Time) float64 {
	i := sort.Search(len(s.points), func(i int) bool { return s.points[i].T > t })
	if i == 0 {
		return 0
	}
	return s.points[i-1].V
}

// MaxV returns the maximum sampled value, or 0 if empty.
func (s *Series) MaxV() float64 {
	m := math.Inf(-1)
	for _, p := range s.points {
		if p.V > m {
			m = p.V
		}
	}
	if math.IsInf(m, -1) {
		return 0
	}
	return m
}

// CrossingTime returns the earliest sample time whose value is >= v, or
// NaN if the series never reaches v. Used to read "time to X% progress"
// off progress curves.
func (s *Series) CrossingTime(v float64) Time {
	for _, p := range s.points {
		if p.V >= v {
			return p.T
		}
	}
	return math.NaN()
}

// Resample returns the series evaluated at fixed intervals from t0 to
// t1 inclusive, step-interpolated — the shape used when printing
// figure data.
func (s *Series) Resample(t0, t1, dt Time) []Point {
	if dt <= 0 {
		panic(fmt.Sprintf("metrics: Resample step %v must be positive", dt))
	}
	var out []Point
	for t := t0; t <= t1+1e-9; t += dt {
		out = append(out, Point{T: t, V: s.At(t)})
	}
	return out
}

// Progress records a job's progress curve. Following the paper, total
// progress runs to 200%: 100 for the map tasks plus 100 for the
// reduce tasks.
type Progress struct {
	Map    *Series // 0..100
	Reduce *Series // 0..100
	Total  *Series // 0..200
}

// NewProgress returns empty progress curves for the named job.
func NewProgress(job string) *Progress {
	return &Progress{
		Map:    NewSeries(job + "/map%"),
		Reduce: NewSeries(job + "/reduce%"),
		Total:  NewSeries(job + "/total%"),
	}
}

// Sample records the map and reduce completion percentages at t.
func (p *Progress) Sample(t Time, mapPct, reducePct float64) {
	p.Map.Add(t, mapPct)
	p.Reduce.Add(t, reducePct)
	p.Total.Add(t, mapPct+reducePct)
}

// Table renders aligned rows of named columns — the printer used by
// the experiment harnesses so every figure prints consistently.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; the cell count must match the columns.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("metrics: table %q row has %d cells, want %d", t.Title, len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends one row of formatted values: strings pass through,
// float64s format with %.4g, ints with %d.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(row...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == len(cells)-1 {
				// No padding after the last column: keeps lines free of
				// trailing whitespace.
				b.WriteString(cell)
			} else {
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
