package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSeriesAddAndLast(t *testing.T) {
	s := NewSeries("x")
	if s.Len() != 0 || s.Last() != (Point{}) {
		t.Fatal("fresh series not empty")
	}
	s.Add(1, 10)
	s.Add(2, 20)
	if s.Len() != 2 || s.Last() != (Point{T: 2, V: 20}) {
		t.Fatalf("Last = %+v", s.Last())
	}
}

func TestSeriesOutOfOrderPanics(t *testing.T) {
	s := NewSeries("x")
	s.Add(5, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order Add did not panic")
		}
	}()
	s.Add(4, 1)
}

func TestSeriesEqualTimeAllowed(t *testing.T) {
	s := NewSeries("x")
	s.Add(5, 1)
	s.Add(5, 2) // same instant, later sample wins for At()
	if s.At(5) != 2 {
		t.Fatalf("At(5) = %v, want 2", s.At(5))
	}
}

func TestSeriesAtStepInterpolation(t *testing.T) {
	s := NewSeries("x")
	s.Add(1, 10)
	s.Add(3, 30)
	cases := []struct{ t, want float64 }{
		{0, 0}, {1, 10}, {2, 10}, {3, 30}, {99, 30},
	}
	for _, c := range cases {
		if got := s.At(c.t); got != c.want {
			t.Fatalf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestSeriesMaxV(t *testing.T) {
	s := NewSeries("x")
	if s.MaxV() != 0 {
		t.Fatal("empty MaxV != 0")
	}
	s.Add(1, -5)
	s.Add(2, -1)
	if s.MaxV() != -1 {
		t.Fatalf("MaxV = %v, want -1", s.MaxV())
	}
}

func TestCrossingTime(t *testing.T) {
	s := NewSeries("x")
	s.Add(1, 10)
	s.Add(2, 50)
	s.Add(3, 100)
	if got := s.CrossingTime(50); got != 2 {
		t.Fatalf("CrossingTime(50) = %v, want 2", got)
	}
	if got := s.CrossingTime(101); !math.IsNaN(got) {
		t.Fatalf("CrossingTime(101) = %v, want NaN", got)
	}
}

func TestResample(t *testing.T) {
	s := NewSeries("x")
	s.Add(0, 0)
	s.Add(10, 100)
	pts := s.Resample(0, 20, 5)
	if len(pts) != 5 {
		t.Fatalf("resampled %d points, want 5", len(pts))
	}
	want := []float64{0, 0, 100, 100, 100}
	for i, w := range want {
		if pts[i].V != w {
			t.Fatalf("resample[%d] = %v, want %v", i, pts[i].V, w)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero-step resample did not panic")
		}
	}()
	s.Resample(0, 1, 0)
}

func TestProgressSample(t *testing.T) {
	p := NewProgress("job")
	p.Sample(1, 10, 0)
	p.Sample(2, 50, 20)
	if p.Total.Last().V != 70 {
		t.Fatalf("total = %v, want 70", p.Total.Last().V)
	}
	if p.Map.Last().V != 50 || p.Reduce.Last().V != 20 {
		t.Fatal("map/reduce curves wrong")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Fig X", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRowf("beta", 2.5)
	tb.AddRowf("c", 7)
	out := tb.String()
	if !strings.Contains(out, "## Fig X") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "2.5") || !strings.Contains(out, "7") {
		t.Fatalf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// title + header + separator + 3 rows
	if len(lines) != 6 {
		t.Fatalf("rendered %d lines, want 6:\n%s", len(lines), out)
	}
}

func TestTableRowArityPanics(t *testing.T) {
	tb := NewTable("t", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("bad arity did not panic")
		}
	}()
	tb.AddRow("only-one")
}

// Property: At() is consistent with the latest-sample-at-or-before rule
// for any monotone sample set.
func TestQuickAtConsistency(t *testing.T) {
	f := func(deltas []uint8, probe uint16) bool {
		s := NewSeries("q")
		t0 := 0.0
		for i, d := range deltas {
			t0 += float64(d)
			s.Add(t0, float64(i))
		}
		p := float64(probe)
		got := s.At(p)
		want := 0.0
		for i, pt := range s.Points() {
			if pt.T <= p {
				want = float64(i)
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("x", "name", "value")
	tb.AddRow("plain", "1")
	tb.AddRow(`quo"te`, "2,5")
	csv := tb.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want 3:\n%s", len(lines), csv)
	}
	if lines[0] != "name,value" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[2] != `"quo""te","2,5"` {
		t.Fatalf("escaped row = %q", lines[2])
	}
}

func TestSeriesCSV(t *testing.T) {
	s := NewSeries("thr")
	s.Add(0, 1.5)
	s.Add(2, 3)
	csv := s.CSV()
	if !strings.Contains(csv, "t,thr\n0,1.5\n2,3\n") {
		t.Fatalf("series csv = %q", csv)
	}
}

func TestBars(t *testing.T) {
	out := Bars("title", []string{"a", "bb"}, []float64{10, 5}, 10)
	if !strings.Contains(out, "title") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	// The larger value fills the full width, the half value about half.
	if strings.Count(lines[1], "█") != 10 {
		t.Fatalf("max bar = %q", lines[1])
	}
	if c := strings.Count(lines[2], "█"); c < 4 || c > 6 {
		t.Fatalf("half bar = %q (%d blocks)", lines[2], c)
	}
	// Zero values render empty but aligned.
	z := Bars("", []string{"z"}, []float64{0}, 10)
	if strings.Count(z, "█") != 0 {
		t.Fatal("zero value drew a bar")
	}
}

func TestBarsArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Bars did not panic")
		}
	}()
	Bars("t", []string{"a"}, []float64{1, 2}, 10)
}

func TestSparkline(t *testing.T) {
	var pts []Point
	for i := 0; i <= 10; i++ {
		pts = append(pts, Point{T: float64(i), V: float64(i)})
	}
	sp := Sparkline(pts, 8)
	if len([]rune(sp)) != 8 {
		t.Fatalf("sparkline width = %d", len([]rune(sp)))
	}
	runes := []rune(sp)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Fatalf("sparkline shape = %q", sp)
	}
	if Sparkline(nil, 8) != "" {
		t.Fatal("empty input sparkline not empty")
	}
	flat := Sparkline([]Point{{0, 5}, {1, 5}}, 4)
	if flat != "▁▁▁▁" {
		t.Fatalf("flat sparkline = %q", flat)
	}
}
