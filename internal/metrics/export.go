package metrics

import (
	"fmt"
	"math"
	"strings"
)

// CSV renders the table as RFC-4180-ish CSV (quotes only where needed),
// for piping figure data into external plotting tools.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvEscape(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// csvEscape quotes a cell when it contains a comma, quote or newline.
func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// CSV renders the series as two-column CSV (t, value).
func (s *Series) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t,%s\n", csvEscape(s.Name))
	for _, p := range s.points {
		fmt.Fprintf(&b, "%g,%g\n", p.T, p.V)
	}
	return b.String()
}

// Bars renders a horizontal ASCII bar chart: one row per label, bars
// scaled to the maximum value, annotated with the numeric value. It is
// the quick-look rendering smrbench prints next to each figure table.
func Bars(title string, labels []string, values []float64, width int) string {
	if len(labels) != len(values) {
		panic(fmt.Sprintf("metrics: Bars %q with %d labels and %d values", title, len(labels), len(values)))
	}
	if width < 8 {
		width = 8
	}
	maxV := 0.0
	maxLabel := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for i, v := range values {
		n := 0
		if maxV > 0 && v > 0 {
			n = int(math.Round(v / maxV * float64(width)))
			if n == 0 {
				n = 1
			}
		}
		fmt.Fprintf(&b, "%-*s  %s%s %.4g\n", maxLabel, labels[i],
			strings.Repeat("█", n), strings.Repeat(" ", width-n), v)
	}
	return b.String()
}

// Sparkline renders a series as a one-line unicode sparkline resampled
// to width points.
func Sparkline(points []Point, width int) string {
	if len(points) == 0 || width <= 0 {
		return ""
	}
	ramp := []rune("▁▂▃▄▅▆▇█")
	// Non-finite samples (a NaN balance factor, an +Inf ratio) are left
	// out of the scale and rendered at the bottom of the ramp; letting
	// them into lo/hi would make the index arithmetic non-finite and
	// int() of that is out of range.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range points {
		if math.IsNaN(p.V) || math.IsInf(p.V, 0) {
			continue
		}
		lo = math.Min(lo, p.V)
		hi = math.Max(hi, p.V)
	}
	t0 := points[0].T
	t1 := points[len(points)-1].T
	out := make([]rune, width)
	for i := range out {
		// Step-interpolate at the i-th resample instant.
		x := t0
		if width > 1 {
			x = t0 + (t1-t0)*float64(i)/float64(width-1)
		}
		v := points[0].V
		for _, p := range points {
			if p.T <= x {
				v = p.V
			}
		}
		idx := 0
		if hi > lo && !math.IsNaN(v) && !math.IsInf(v, 0) {
			idx = int((v - lo) / (hi - lo) * float64(len(ramp)-1))
		}
		out[i] = ramp[idx]
	}
	return string(out)
}
