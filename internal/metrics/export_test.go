package metrics

import (
	"encoding/csv"
	"math"
	"reflect"
	"strings"
	"testing"
	"unicode/utf8"
)

// TestTableCSVRoundTrip writes cells containing every character class
// csvEscape must quote — commas, quotes, newlines — and reads them back
// with the standard CSV parser.
func TestTableCSVRoundTrip(t *testing.T) {
	tbl := NewTable("rt", "a", "b", "c")
	rows := [][]string{
		{"plain", "comma,cell", `quote"cell`},
		{"new\nline", `mixed",` + "\n" + `cell`, ""},
		{" leading space", "trailing space ", `""`},
	}
	for _, r := range rows {
		tbl.AddRow(r...)
	}
	recs, err := csv.NewReader(strings.NewReader(tbl.CSV())).ReadAll()
	if err != nil {
		t.Fatalf("standard CSV parser rejected our output: %v", err)
	}
	want := append([][]string{{"a", "b", "c"}}, rows...)
	if !reflect.DeepEqual(recs, want) {
		t.Fatalf("round trip mismatch:\ngot  %q\nwant %q", recs, want)
	}
}

func TestCSVEscape(t *testing.T) {
	cases := map[string]string{
		"plain":      "plain",
		"a,b":        `"a,b"`,
		`say "hi"`:   `"say ""hi"""`,
		"two\nlines": "\"two\nlines\"",
		"":           "",
	}
	for in, want := range cases {
		if got := csvEscape(in); got != want {
			t.Fatalf("csvEscape(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestSeriesCSVRoundTrip covers the series exporter, including a name
// that needs escaping in the header.
func TestSeriesCSVRoundTrip(t *testing.T) {
	s := NewSeries(`rate,"shuffle"`)
	s.Add(0, 1.5)
	s.Add(2, 3)
	recs, err := csv.NewReader(strings.NewReader(s.CSV())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"t", `rate,"shuffle"`}, {"0", "1.5"}, {"2", "3"}}
	if !reflect.DeepEqual(recs, want) {
		t.Fatalf("got %q, want %q", recs, want)
	}
}

// TestSparklineNonFinite pins the fix for int(NaN): non-finite samples
// must render at the bottom of the ramp instead of panicking or
// poisoning the scale.
func TestSparklineNonFinite(t *testing.T) {
	pts := []Point{
		{T: 0, V: math.NaN()},
		{T: 1, V: 1},
		{T: 2, V: math.Inf(1)},
		{T: 3, V: 2},
		{T: 4, V: math.Inf(-1)},
	}
	out := Sparkline(pts, 10)
	if utf8.RuneCountInString(out) != 10 {
		t.Fatalf("sparkline width = %d, want 10", utf8.RuneCountInString(out))
	}
	// All-non-finite input must also survive.
	out = Sparkline([]Point{{T: 0, V: math.NaN()}, {T: 1, V: math.NaN()}}, 4)
	if utf8.RuneCountInString(out) != 4 {
		t.Fatalf("all-NaN sparkline width = %d, want 4", utf8.RuneCountInString(out))
	}
}
