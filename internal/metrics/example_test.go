package metrics_test

import (
	"fmt"

	"smapreduce/internal/metrics"
)

// ExampleTable renders aligned experiment rows.
func ExampleTable() {
	t := metrics.NewTable("demo", "engine", "exec s")
	t.AddRowf("HadoopV1", 163.9)
	t.AddRowf("SMapReduce", 100.5)
	fmt.Print(t.String())
	// Output:
	// ## demo
	// engine      exec s
	// ----------  ------
	// HadoopV1    163.9
	// SMapReduce  100.5
}

// ExampleBars draws a quick-look ASCII chart.
func ExampleBars() {
	fmt.Print(metrics.Bars("", []string{"v1", "smr"}, []float64{10, 5}, 10))
	// Output:
	// v1   ██████████ 10
	// smr  █████      5
}
