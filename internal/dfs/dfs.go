// Package dfs simulates the HDFS layer beneath the MapReduce runtime:
// files are split into fixed-size blocks, each block is replicated on a
// set of nodes using the HDFS default placement policy, and the job
// tracker queries block locations to schedule node-local map tasks.
//
// Data contents are never materialised — only sizes and placement,
// which is all the performance model needs.
package dfs

import (
	"fmt"
	"sort"

	"smapreduce/internal/sim"
)

// Config describes the file system geometry.
type Config struct {
	BlockSizeMB  float64 // split/block size; the paper uses 128 MB
	Replication  int     // replicas per block
	NodesPerRack int     // rack size for the placement policy
}

// DefaultConfig mirrors the paper's setup: 128 MB blocks, 3× replication,
// and 8-node racks (two racks of the 16 workers).
func DefaultConfig() Config {
	return Config{BlockSizeMB: 128, Replication: 3, NodesPerRack: 8}
}

// Validate reports the first problem with the config, or nil.
func (c Config) Validate() error {
	switch {
	case c.BlockSizeMB <= 0:
		return fmt.Errorf("dfs: BlockSizeMB = %v, must be positive", c.BlockSizeMB)
	case c.Replication <= 0:
		return fmt.Errorf("dfs: Replication = %d, must be positive", c.Replication)
	case c.NodesPerRack <= 0:
		return fmt.Errorf("dfs: NodesPerRack = %d, must be positive", c.NodesPerRack)
	}
	return nil
}

// Block is one replicated chunk of a file.
type Block struct {
	Index    int
	SizeMB   float64
	Replicas []int // node IDs hosting a replica, de-duplicated
}

// File is a stored file: an ordered list of blocks.
type File struct {
	Name   string
	SizeMB float64
	Blocks []Block
}

// Split is the unit of work handed to one map task. With the default
// input format one split is one block.
type Split struct {
	File   string
	Index  int
	SizeMB float64
	Hosts  []int
}

// Locality classifies how close a consumer node is to a split replica.
type Locality int

const (
	// Local: the node holds a replica; the read is from local disk.
	Local Locality = iota
	// RackLocal: a replica lives in the same rack; the read crosses
	// only the top-of-rack switch.
	RackLocal
	// Remote: all replicas are in other racks.
	Remote
)

func (l Locality) String() string {
	switch l {
	case Local:
		return "local"
	case RackLocal:
		return "rack-local"
	case Remote:
		return "remote"
	}
	return fmt.Sprintf("Locality(%d)", int(l))
}

// FS is the simulated file system over a fixed set of data nodes.
type FS struct {
	cfg    Config
	nodes  int
	rng    *sim.Rand
	files  map[string]*File
	writer int // round-robin "writing client" cursor
}

// New builds a file system over nodes data nodes. Invalid configs and
// non-positive node counts panic (static configuration).
func New(nodes int, cfg Config, rng *sim.Rand) *FS {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if nodes <= 0 {
		panic(fmt.Sprintf("dfs: nodes = %d, must be positive", nodes))
	}
	if rng == nil {
		rng = sim.NewRand(1)
	}
	return &FS{cfg: cfg, nodes: nodes, rng: rng, files: make(map[string]*File)}
}

// Config returns the file system geometry.
func (fs *FS) Config() Config { return fs.cfg }

// Nodes returns the number of data nodes.
func (fs *FS) Nodes() int { return fs.nodes }

// Rack returns the rack index of a node.
func (fs *FS) Rack(node int) int { return node / fs.cfg.NodesPerRack }

// Create stores a file of sizeMB, placing blocks with the HDFS default
// policy: first replica on the (rotating) writer node, second on a node
// in a different rack, third on a different node in the second rack.
// Creating an existing name or a non-positive size returns an error.
func (fs *FS) Create(name string, sizeMB float64) (*File, error) {
	if _, ok := fs.files[name]; ok {
		return nil, fmt.Errorf("dfs: file %q already exists", name)
	}
	if sizeMB <= 0 {
		return nil, fmt.Errorf("dfs: file %q size %v must be positive", name, sizeMB)
	}
	f := &File{Name: name, SizeMB: sizeMB}
	remaining := sizeMB
	for i := 0; remaining > 0; i++ {
		b := Block{Index: i, SizeMB: fs.cfg.BlockSizeMB}
		if remaining < b.SizeMB {
			b.SizeMB = remaining
		}
		remaining -= b.SizeMB
		b.Replicas = fs.place()
		f.Blocks = append(f.Blocks, b)
	}
	fs.files[name] = f
	return f, nil
}

// MustCreate is Create for static test/benchmark setup; it panics on error.
func (fs *FS) MustCreate(name string, sizeMB float64) *File {
	f, err := fs.Create(name, sizeMB)
	if err != nil {
		panic(err)
	}
	return f
}

// Open returns a stored file, or an error if absent.
func (fs *FS) Open(name string) (*File, error) {
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("dfs: file %q does not exist", name)
	}
	return f, nil
}

// Delete removes a file; deleting an absent name is an error.
func (fs *FS) Delete(name string) error {
	if _, ok := fs.files[name]; !ok {
		return fmt.Errorf("dfs: file %q does not exist", name)
	}
	delete(fs.files, name)
	return nil
}

// Files returns the stored file names in sorted order.
func (fs *FS) Files() []string {
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Splits returns the map input splits of a file, one per block.
func (f *File) Splits() []Split {
	splits := make([]Split, len(f.Blocks))
	for i, b := range f.Blocks {
		splits[i] = Split{File: f.Name, Index: b.Index, SizeMB: b.SizeMB, Hosts: append([]int(nil), b.Replicas...)}
	}
	return splits
}

// LocalityOf classifies node's proximity to the split.
func (fs *FS) LocalityOf(node int, s Split) Locality {
	rack := fs.Rack(node)
	best := Remote
	for _, h := range s.Hosts {
		if h == node {
			return Local
		}
		if fs.Rack(h) == rack {
			best = RackLocal
		}
	}
	return best
}

// NearestHost returns the replica host to read from for a consumer at
// node: the node itself when local, otherwise a same-rack replica,
// otherwise the first replica.
func (fs *FS) NearestHost(node int, s Split) int {
	rack := fs.Rack(node)
	rackHost := -1
	for _, h := range s.Hosts {
		if h == node {
			return h
		}
		if rackHost < 0 && fs.Rack(h) == rack {
			rackHost = h
		}
	}
	if rackHost >= 0 {
		return rackHost
	}
	return s.Hosts[0]
}

// BlocksOn reports how many block replicas of file f live on node.
func (fs *FS) BlocksOn(f *File, node int) int {
	n := 0
	for _, b := range f.Blocks {
		for _, r := range b.Replicas {
			if r == node {
				n++
			}
		}
	}
	return n
}

// NodeReport summarises one data node's storage.
type NodeReport struct {
	Node     int
	Blocks   int
	StoredMB float64
}

// BlockReport returns per-node block counts and stored volume across
// all files — the NameNode's view of datanode utilisation.
func (fs *FS) BlockReport() []NodeReport {
	reports := make([]NodeReport, fs.nodes)
	for i := range reports {
		reports[i].Node = i
	}
	for _, f := range fs.files {
		for _, b := range f.Blocks {
			for _, r := range b.Replicas {
				reports[r].Blocks++
				reports[r].StoredMB += b.SizeMB
			}
		}
	}
	return reports
}

// TotalStoredMB returns the cluster-wide stored volume including
// replication.
func (fs *FS) TotalStoredMB() float64 {
	total := 0.0
	for _, r := range fs.BlockReport() {
		total += r.StoredMB
	}
	return total
}

// place picks replica nodes for one block following the HDFS default
// placement policy, degrading gracefully on tiny clusters.
func (fs *FS) place() []int {
	repl := fs.cfg.Replication
	if repl > fs.nodes {
		repl = fs.nodes
	}
	chosen := make([]int, 0, repl)
	used := make(map[int]bool, repl)
	add := func(n int) bool {
		if n < 0 || used[n] {
			return false
		}
		used[n] = true
		chosen = append(chosen, n)
		return true
	}

	// First replica: rotating writer node (simulating data loaded from
	// a client colocated with the cluster, as PUMA datasets are).
	first := fs.writer % fs.nodes
	fs.writer++
	add(first)

	// Second replica: random node in a different rack, if one exists.
	if len(chosen) < repl {
		add(fs.pickNode(func(n int) bool { return !used[n] && fs.Rack(n) != fs.Rack(first) }))
	}
	// Third replica: random node in the same rack as the second.
	if len(chosen) >= 2 && len(chosen) < repl {
		second := chosen[1]
		add(fs.pickNode(func(n int) bool { return !used[n] && fs.Rack(n) == fs.Rack(second) }))
	}
	// Any remaining replicas (or fallbacks when the cluster has a
	// single rack): uniform random over unused nodes.
	for len(chosen) < repl {
		if !add(fs.pickNode(func(n int) bool { return !used[n] })) {
			break
		}
	}
	return chosen
}

// pickNode returns a uniformly random node satisfying ok, or -1.
func (fs *FS) pickNode(ok func(int) bool) int {
	candidates := make([]int, 0, fs.nodes)
	for n := 0; n < fs.nodes; n++ {
		if ok(n) {
			candidates = append(candidates, n)
		}
	}
	if len(candidates) == 0 {
		return -1
	}
	return candidates[fs.rng.Intn(len(candidates))]
}
