package dfs

import (
	"math"
	"testing"
	"testing/quick"

	"smapreduce/internal/sim"
)

func newFS(t *testing.T, nodes int) *FS {
	t.Helper()
	return New(nodes, DefaultConfig(), sim.NewRand(42))
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	bad := []Config{
		{BlockSizeMB: 0, Replication: 3, NodesPerRack: 8},
		{BlockSizeMB: 128, Replication: 0, NodesPerRack: 8},
		{BlockSizeMB: 128, Replication: 3, NodesPerRack: 0},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Fatalf("case %d passed validation", i)
		}
	}
}

func TestCreateBlockCountAndSizes(t *testing.T) {
	fs := newFS(t, 16)
	f := fs.MustCreate("a", 1000) // 7×128 + 104
	if len(f.Blocks) != 8 {
		t.Fatalf("blocks = %d, want 8", len(f.Blocks))
	}
	total := 0.0
	for i, b := range f.Blocks {
		if b.Index != i {
			t.Fatalf("block %d has index %d", i, b.Index)
		}
		total += b.SizeMB
		if i < 7 && b.SizeMB != 128 {
			t.Fatalf("block %d size %v, want 128", i, b.SizeMB)
		}
	}
	if math.Abs(total-1000) > 1e-9 {
		t.Fatalf("total block size %v, want 1000", total)
	}
	if math.Abs(f.Blocks[7].SizeMB-104) > 1e-9 {
		t.Fatalf("tail block %v, want 104", f.Blocks[7].SizeMB)
	}
}

func TestCreateErrors(t *testing.T) {
	fs := newFS(t, 4)
	fs.MustCreate("a", 100)
	if _, err := fs.Create("a", 100); err == nil {
		t.Fatal("duplicate create succeeded")
	}
	if _, err := fs.Create("b", 0); err == nil {
		t.Fatal("zero-size create succeeded")
	}
	if _, err := fs.Create("c", -5); err == nil {
		t.Fatal("negative-size create succeeded")
	}
}

func TestOpenDelete(t *testing.T) {
	fs := newFS(t, 4)
	fs.MustCreate("x", 10)
	if _, err := fs.Open("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("y"); err == nil {
		t.Fatal("open of missing file succeeded")
	}
	if err := fs.Delete("x"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete("x"); err == nil {
		t.Fatal("double delete succeeded")
	}
}

func TestFilesSorted(t *testing.T) {
	fs := newFS(t, 4)
	for _, n := range []string{"c", "a", "b"} {
		fs.MustCreate(n, 10)
	}
	names := fs.Files()
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Fatalf("Files() = %v", names)
	}
}

func TestReplicationCountAndDistinct(t *testing.T) {
	fs := newFS(t, 16)
	f := fs.MustCreate("a", 10*128)
	for _, b := range f.Blocks {
		if len(b.Replicas) != 3 {
			t.Fatalf("block %d has %d replicas, want 3", b.Index, len(b.Replicas))
		}
		seen := map[int]bool{}
		for _, r := range b.Replicas {
			if r < 0 || r >= 16 || seen[r] {
				t.Fatalf("block %d bad replica set %v", b.Index, b.Replicas)
			}
			seen[r] = true
		}
	}
}

func TestPlacementCrossesRacks(t *testing.T) {
	fs := newFS(t, 16) // racks of 8 → 2 racks
	f := fs.MustCreate("a", 64*128)
	crossRack := 0
	for _, b := range f.Blocks {
		racks := map[int]bool{}
		for _, r := range b.Replicas {
			racks[fs.Rack(r)] = true
		}
		if len(racks) > 1 {
			crossRack++
		}
	}
	if crossRack != len(f.Blocks) {
		t.Fatalf("only %d/%d blocks span racks", crossRack, len(f.Blocks))
	}
}

func TestTinyClusterPlacement(t *testing.T) {
	fs := New(2, DefaultConfig(), sim.NewRand(1)) // replication 3 > nodes 2
	f := fs.MustCreate("a", 300)
	for _, b := range f.Blocks {
		if len(b.Replicas) != 2 {
			t.Fatalf("replicas = %v, want exactly the 2 nodes", b.Replicas)
		}
	}
}

func TestSplitsMatchBlocks(t *testing.T) {
	fs := newFS(t, 16)
	f := fs.MustCreate("a", 1000)
	splits := f.Splits()
	if len(splits) != len(f.Blocks) {
		t.Fatalf("splits = %d, blocks = %d", len(splits), len(f.Blocks))
	}
	for i, s := range splits {
		if s.SizeMB != f.Blocks[i].SizeMB || s.Index != i || s.File != "a" {
			t.Fatalf("split %d mismatch: %+v", i, s)
		}
	}
	// Splits hold copies, not aliases, of the replica list.
	splits[0].Hosts[0] = -99
	if f.Blocks[0].Replicas[0] == -99 {
		t.Fatal("split aliases block replica slice")
	}
}

func TestLocalityClassification(t *testing.T) {
	fs := newFS(t, 16)
	s := Split{File: "a", SizeMB: 128, Hosts: []int{0, 9}}
	if got := fs.LocalityOf(0, s); got != Local {
		t.Fatalf("LocalityOf(0) = %v, want local", got)
	}
	if got := fs.LocalityOf(3, s); got != RackLocal { // rack 0 via host 0
		t.Fatalf("LocalityOf(3) = %v, want rack-local", got)
	}
	s2 := Split{Hosts: []int{9, 10}}
	if got := fs.LocalityOf(3, s2); got != Remote {
		t.Fatalf("LocalityOf(3) = %v, want remote", got)
	}
}

func TestNearestHost(t *testing.T) {
	fs := newFS(t, 16)
	s := Split{Hosts: []int{9, 2}}
	if got := fs.NearestHost(9, s); got != 9 {
		t.Fatalf("NearestHost local = %d, want 9", got)
	}
	if got := fs.NearestHost(3, s); got != 2 { // same rack as 2
		t.Fatalf("NearestHost rack = %d, want 2", got)
	}
	s3 := Split{Hosts: []int{12, 13}}
	if got := fs.NearestHost(3, s3); got != 12 {
		t.Fatalf("NearestHost remote = %d, want first replica 12", got)
	}
}

func TestBlocksOnCountsReplicas(t *testing.T) {
	fs := newFS(t, 16)
	f := fs.MustCreate("a", 100*128)
	total := 0
	for n := 0; n < 16; n++ {
		total += fs.BlocksOn(f, n)
	}
	if total != 100*3 {
		t.Fatalf("total replicas counted = %d, want 300", total)
	}
}

func TestPlacementSpreadIsEven(t *testing.T) {
	fs := newFS(t, 16)
	f := fs.MustCreate("a", 400*128)
	counts := make([]float64, 16)
	for n := range counts {
		counts[n] = float64(fs.BlocksOn(f, n))
	}
	// 1200 replicas over 16 nodes → mean 75; no node should be wildly off.
	for n, c := range counts {
		if c < 30 || c > 150 {
			t.Fatalf("node %d holds %v replicas, mean is 75 — placement is badly skewed", n, c)
		}
	}
}

func TestLocalityString(t *testing.T) {
	if Local.String() != "local" || RackLocal.String() != "rack-local" || Remote.String() != "remote" {
		t.Fatal("Locality strings")
	}
	if Locality(9).String() == "" {
		t.Fatal("unknown locality empty")
	}
}

func TestNewPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, DefaultConfig(), nil) },
		func() { New(4, Config{}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad New did not panic")
				}
			}()
			f()
		}()
	}
}

// Property: every created file's splits cover exactly the file size and
// every split has at least one in-range host.
func TestQuickSplitCoverage(t *testing.T) {
	f := func(sizeRaw uint16, nodesRaw uint8) bool {
		nodes := int(nodesRaw%30) + 1
		size := float64(sizeRaw%5000) + 1
		fs := New(nodes, DefaultConfig(), sim.NewRand(uint64(sizeRaw)+1))
		file := fs.MustCreate("f", size)
		total := 0.0
		for _, s := range file.Splits() {
			total += s.SizeMB
			if len(s.Hosts) == 0 {
				return false
			}
			for _, h := range s.Hosts {
				if h < 0 || h >= nodes {
					return false
				}
			}
		}
		return math.Abs(total-size) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockReport(t *testing.T) {
	fs := newFS(t, 4)
	fs.MustCreate("a", 1000) // 8 blocks × 3 replicas
	reports := fs.BlockReport()
	if len(reports) != 4 {
		t.Fatalf("reports = %d", len(reports))
	}
	blocks := 0
	stored := 0.0
	for i, r := range reports {
		if r.Node != i {
			t.Fatalf("report %d misnumbered: %+v", i, r)
		}
		blocks += r.Blocks
		stored += r.StoredMB
	}
	if blocks != 8*3 {
		t.Fatalf("total replicas = %d, want 24", blocks)
	}
	if math.Abs(stored-3000) > 1e-9 {
		t.Fatalf("stored = %v, want 3000", stored)
	}
	if math.Abs(fs.TotalStoredMB()-3000) > 1e-9 {
		t.Fatalf("TotalStoredMB = %v", fs.TotalStoredMB())
	}
}

func TestBlockReportAfterDelete(t *testing.T) {
	fs := newFS(t, 4)
	fs.MustCreate("a", 512)
	fs.MustCreate("b", 512)
	before := fs.TotalStoredMB()
	if err := fs.Delete("a"); err != nil {
		t.Fatal(err)
	}
	after := fs.TotalStoredMB()
	if math.Abs(after-before/2) > 1e-9 {
		t.Fatalf("delete did not halve storage: %v -> %v", before, after)
	}
}
