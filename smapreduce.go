// Package smapreduce reproduces "SMapReduce: Optimising Resource
// Allocation by Managing Working Slots at Runtime" (Liang & Lau, IPPS
// 2015) as a self-contained Go system: a slot-based MapReduce runtime
// with a YARN-style container baseline, a dynamic slot manager (the
// paper's contribution), a discrete-event cluster substrate standing in
// for the paper's 16-node workbench, and a real in-process MapReduce
// engine whose worker pools are resized by the same algorithm.
//
// This top-level package is a thin facade over the implementation
// packages; it exists so the quickstart examples and the benchmark
// harness read naturally:
//
//	res, err := smapreduce.Run(smapreduce.SMapReduce, smapreduce.Options{},
//	    smapreduce.Job("grep", 100<<10, 30))
//
// The implementation lives under internal/:
//
//	internal/core        — slot manager + engine facade (the contribution)
//	internal/mr          — job tracker, task trackers, slots, tasks, barrier
//	internal/resource    — CPU/disk/memory model with the thrashing curve
//	internal/netsim      — max-min fair network fabric with incast penalty
//	internal/dfs         — simulated HDFS (blocks, replication, locality)
//	internal/puma        — PUMA benchmark workload profiles
//	internal/localmr     — real in-process MapReduce engine
//	internal/experiments — one harness per paper figure
package smapreduce

import (
	"smapreduce/internal/core"
	"smapreduce/internal/mr"
	"smapreduce/internal/puma"
)

// Engine selects the system under test.
type Engine = core.Engine

// The three evaluated systems.
const (
	HadoopV1   = core.EngineHadoopV1
	YARN       = core.EngineYARN
	SMapReduce = core.EngineSMapReduce
)

// The multi-tenant capacity engines: HadoopV1 slots plus a pluggable
// per-tenant task-cap policy (internal/policy), driven by open arrival
// streams (internal/arrival) through Options.Arrivals and
// Options.Tenants.
const (
	FairShare     = core.EngineFairShare
	CapacityQueue = core.EngineCapacityQueue
	GameTheoretic = core.EngineGameTheoretic
)

// Options configures a run; the zero value reproduces the paper's
// 16-worker workbench with 3 map + 2 reduce initial slots.
type Options = core.Options

// Result carries finished jobs and (for SMapReduce) the decision log.
type Result = core.Result

// ClusterConfig describes the simulated cluster.
type ClusterConfig = mr.Config

// JobSpec describes one job submission.
type JobSpec = mr.JobSpec

// SlotManagerConfig tunes the dynamic slot manager.
type SlotManagerConfig = core.SlotManagerConfig

// DefaultCluster returns the paper's workbench configuration.
func DefaultCluster() ClusterConfig { return mr.DefaultConfig() }

// Run executes jobs on the chosen engine over a simulated cluster.
func Run(engine Engine, opts Options, jobs ...JobSpec) (*Result, error) {
	return core.Run(engine, opts, jobs...)
}

// Job builds a job spec for a named PUMA benchmark. It panics on an
// unknown benchmark name; use Benchmarks for the registry.
func Job(benchmark string, inputMB float64, reduces int) JobSpec {
	return JobSpec{
		Name:    benchmark,
		Profile: puma.MustGet(benchmark),
		InputMB: inputMB,
		Reduces: reduces,
	}
}

// Benchmarks lists the available PUMA workload profiles.
func Benchmarks() []string { return puma.Names() }
