// Command covercheck enforces per-package coverage floors: it reads a
// Go coverage profile (go test -coverprofile) and a floors file, prints
// a per-package statement-coverage table, and exits non-zero when any
// package with a declared floor falls below it or is missing from the
// profile entirely.
//
// Usage:
//
//	go test -short -coverprofile=cover.out ./...
//	covercheck -profile cover.out -floors COVERAGE.floors
//
// Floors file format: one `import/path minimum-percent` pair per line,
// '#' starts a comment. Only listed packages are gated; the table shows
// everything in the profile.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

type pkgCover struct {
	statements int
	covered    int
}

func (p pkgCover) percent() float64 {
	if p.statements == 0 {
		return 0
	}
	return 100 * float64(p.covered) / float64(p.statements)
}

func main() {
	profilePath := flag.String("profile", "cover.out", "coverage profile from go test -coverprofile")
	floorsPath := flag.String("floors", "COVERAGE.floors", "per-package floors file")
	flag.Parse()

	floors, order, err := loadFloors(*floorsPath)
	if err != nil {
		fatal(err)
	}
	cover, err := loadProfile(*profilePath)
	if err != nil {
		fatal(err)
	}

	pkgs := make([]string, 0, len(cover))
	for p := range cover {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)
	for _, p := range pkgs {
		floor := ""
		if f, ok := floors[p]; ok {
			floor = fmt.Sprintf("(floor %.0f%%)", f)
		}
		fmt.Printf("%6.1f%%  %-40s %s\n", cover[p].percent(), p, floor)
	}

	failed := false
	for _, p := range order {
		c, ok := cover[p]
		if !ok {
			fmt.Fprintf(os.Stderr, "covercheck: package %s has a floor but no coverage data\n", p)
			failed = true
			continue
		}
		if got, want := c.percent(), floors[p]; got < want {
			fmt.Fprintf(os.Stderr, "covercheck: package %s at %.1f%%, below floor %.0f%%\n", p, got, want)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// loadFloors reads the floors file, returning the floor map and the
// declaration order (for stable failure reporting).
func loadFloors(name string) (map[string]float64, []string, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	floors := make(map[string]float64)
	var order []string
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 2 {
			return nil, nil, fmt.Errorf("%s:%d: want 'package floor', got %q", name, line, text)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || v < 0 || v > 100 {
			return nil, nil, fmt.Errorf("%s:%d: bad floor %q", name, line, fields[1])
		}
		if _, dup := floors[fields[0]]; dup {
			return nil, nil, fmt.Errorf("%s:%d: duplicate package %s", name, line, fields[0])
		}
		floors[fields[0]] = v
		order = append(order, fields[0])
	}
	return floors, order, sc.Err()
}

// loadProfile aggregates a coverage profile into per-package statement
// counts. Profile lines read `file.go:sl.sc,el.ec numStmts hitCount`.
func loadProfile(name string) (map[string]pkgCover, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cover := make(map[string]pkgCover)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if line == 1 && strings.HasPrefix(text, "mode:") {
			continue
		}
		if strings.TrimSpace(text) == "" {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return nil, fmt.Errorf("%s:%d: malformed block %q", name, line, text)
		}
		colon := strings.LastIndexByte(fields[0], ':')
		if colon < 0 {
			return nil, fmt.Errorf("%s:%d: malformed location %q", name, line, fields[0])
		}
		pkg := path.Dir(fields[0][:colon])
		stmts, err1 := strconv.Atoi(fields[1])
		count, err2 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil || stmts < 0 {
			return nil, fmt.Errorf("%s:%d: malformed counts %q", name, line, text)
		}
		c := cover[pkg]
		c.statements += stmts
		if count > 0 {
			c.covered += stmts
		}
		cover[pkg] = c
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(cover) == 0 {
		return nil, fmt.Errorf("%s: empty coverage profile", name)
	}
	return cover, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "covercheck:", err)
	os.Exit(1)
}
