package main

import (
	"fmt"
	"time"

	"smapreduce/internal/arrival"
	"smapreduce/internal/cli"
	"smapreduce/internal/core"
	"smapreduce/internal/fleet"
	"smapreduce/internal/mr"
	"smapreduce/internal/sim"
)

// runFleet executes -fleet N: a fleet of independent tenant clusters
// sharing the cluster shape built from the usual flags, with merged
// fleet-level statistics instead of a per-job timeline. Each cluster
// gets its own seed derived from -seed, so the fleet is reproducible
// and worker-count independent.
func runFleet(n, workers int, engine core.Engine, cluster mr.Config, specs []mr.JobSpec, arrCfg *arrival.Config, mix bool, seed uint64) {
	cfg := fleet.Config{
		Clusters: n,
		Workers:  workers,
		Seed:     seed,
		Engine:   engine,
		Cluster:  cluster,
	}
	switch {
	case arrCfg != nil:
		// Every cluster replays its own seed-derived open arrival
		// stream; the one policy instance is shared across workers
		// (policies are pure, so sharing cannot perturb determinism).
		capPolicy, err := cli.BuildCapacityPolicy(engine, cli.PolicyTenants(*arrCfg))
		if err != nil {
			fatal(err)
		}
		cfg.Capacity = capPolicy
		cfg.Arrivals = func(_ int, rng *sim.Rand) mr.ArrivalSource {
			src, err := arrival.New(*arrCfg, rng)
			if err != nil {
				panic(err) // validated at flag parse; cannot fail here
			}
			return src
		}
	case !mix:
		// Same workload in every cluster; only the seed varies. The
		// slice is shared read-only across workers (specs are copied by
		// value into jobs).
		cfg.Specs = func(int, *sim.Rand) []mr.JobSpec { return specs }
	}
	start := time.Now()
	res, err := fleet.Run(cfg)
	if err != nil {
		fatal(err)
	}
	wall := time.Since(start).Seconds()
	fmt.Println(res.Summary())
	fmt.Printf("  wall:      %.2fs  (%.1f clusters/s on %d workers)\n",
		wall, float64(n)/wall, res.Workers)
}
