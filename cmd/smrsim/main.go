// Command smrsim runs one MapReduce workload on a simulated cluster
// under a chosen engine and prints the timeline, slot decisions and
// final metrics.
//
// Usage:
//
//	smrsim -engine smapreduce -bench terasort -input-gb 100
//	smrsim -engine hadoopv1 -bench grep -workers 16 -map-slots 3
//	smrsim -bench inverted-index -jobs 4 -stagger 5 -tracelog
//	smrsim -bench grep -speculate -slow-nodes 4 -fail-at 30 -fail-id 2
//	smrsim -bench terasort -chaos 'crash tt3 @20; rejoin tt3 @60' -events run.jsonl
//	smrsim -bench terasort -chaos schedule.chaos
//	smrsim -bench terasort -trace run.json -tracev 1 -explain
//	smrsim -bench terasort -serve :8080 -telemetry run.csv
//	smrsim -fleet 1024 -fleet-workers 8 -bench grep -input-gb 1
//	smrsim -fleet 256 -fleet-mix -seed 7
//	smrsim -engine fairshare -arrive examples/multitenant/arrivals.json
//	smrsim -engine capacityqueue -arrive '{"horizon":600,"tenants":[...]}' -explain
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"smapreduce/internal/arrival"
	"smapreduce/internal/chaos"
	"smapreduce/internal/cli"
	"smapreduce/internal/core"
	"smapreduce/internal/experiments"
	"smapreduce/internal/mr"
	"smapreduce/internal/policy"
	"smapreduce/internal/puma"
	"smapreduce/internal/serve"
	"smapreduce/internal/telemetry"
	"smapreduce/internal/trace"
)

func main() {
	var (
		engineName  = flag.String("engine", "smapreduce", "engine: hadoopv1 | yarn | smapreduce | fairshare | capacityqueue | gametheoretic")
		bench       = flag.String("bench", "histogram-ratings", "PUMA benchmark (see -list)")
		inputGB     = flag.Float64("input-gb", 100, "input size per job in GB")
		reduces     = flag.Int("reduces", 30, "reduce tasks per job")
		jobs        = flag.Int("jobs", 1, "number of identical jobs to submit")
		stagger     = flag.Float64("stagger", 5, "seconds between job submissions")
		workers     = flag.Int("workers", 16, "task trackers")
		mapSlots    = flag.Int("map-slots", 3, "initial map slots per tracker")
		reduceSlots = flag.Int("reduce-slots", 2, "initial reduce slots per tracker")
		seed        = flag.Uint64("seed", 1, "simulation seed")
		traceLog    = flag.Bool("tracelog", false, "print runtime trace lines")
		tracePath   = flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file (open in Perfetto or chrome://tracing)")
		traceV      = flag.Int("tracev", 0, "trace verbosity: 0 tasks+decisions, 1 +shuffle flows, 2 +all fabric flows")
		explain     = flag.Bool("explain", false, "print the slot manager's decision audit trail (full inputs per decision)")
		serveAddr   = flag.String("serve", "", "serve the simulation service on this address (POST /runs, SSE /runs/{id}/events, /ledger, /metrics, /trace) and stay up after the run")
		serveOnly   = flag.Bool("serve-only", false, "skip the local run: boot the simulation service (at -serve, default :0) and wait for submissions")
		serveWk     = flag.Int("serve-workers", 2, "simulation service worker pool size (concurrent runs)")
		serveQueue  = flag.Int("serve-queue", 0, "service queue depth beyond the workers before 429 shedding (0 = -serve-workers)")
		artifactDir = flag.String("artifact-dir", "", "mirror finished service runs' artifacts and the ledger (ledger.jsonl) under this directory")
		drainDur    = flag.Duration("drain", 30*time.Second, "graceful-shutdown deadline for draining in-flight service runs on SIGINT/SIGTERM")
		list        = flag.Bool("list", false, "list benchmarks and exit")
		scheduler   = flag.String("scheduler", "fifo", "job scheduler: fifo | fair")
		speculate   = flag.Bool("speculate", false, "enable speculative map execution")
		failAt      = flag.Float64("fail-at", 0, "kill tracker -fail-id at this virtual second (0 = no failure)")
		failID      = flag.Int("fail-id", 0, "tracker to kill when -fail-at is set")
		chaosSpec   = flag.String("chaos", "", "fault schedule: a file path or an inline spec, e.g. 'crash tt3 @20; rejoin tt3 @60' (kinds: crash, rejoin, hbloss, slow, link)")
		arriveSpec  = flag.String("arrive", "", "open multi-tenant arrival stream: a JSON file path or inline JSON (see examples/multitenant/arrivals.json); replaces -bench/-jobs/-stagger")
		slowNodes   = flag.Int("slow-nodes", 0, "make the last N nodes half-speed (heterogeneous cluster)")
		eventsPath  = flag.String("events", "", "write the structured runtime event log (JSONL) to this file")
		telemPath   = flag.String("telemetry", "", "write the sampled telemetry series to this file (CSV if it ends in .csv, else JSONL) and print the slot/rate timeline")
		history     = flag.Bool("history", false, "print the per-job history report")
		fleetN      = flag.Int("fleet", 0, "run a fleet of N independent clusters in parallel and print merged stats (per-run flags like -trace/-serve are ignored)")
		fleetWk     = flag.Int("fleet-workers", 0, "fleet worker-pool size (0 = GOMAXPROCS, overridable via SMR_WORKERS); -workers still means task trackers per cluster")
		fleetMix    = flag.Bool("fleet-mix", false, "give each fleet cluster a seed-derived PUMA workload mix instead of the -bench workload")
	)
	flag.Parse()

	if *list {
		fmt.Println("available benchmarks:")
		for _, p := range puma.All() {
			fmt.Printf("  %-24s %-12s shuffle ratio %.4f, thrash peak %.1f slots\n",
				p.Name, p.Class(), p.ShuffleRatio(), p.MapPeakSlots)
		}
		return
	}

	if *serveOnly {
		addr := *serveAddr
		if addr == "" {
			addr = ":0"
		}
		srv, err := startServer(addr, serve.Options{
			Workers:     *serveWk,
			Queue:       *serveQueue,
			ArtifactDir: *artifactDir,
		})
		if err != nil {
			fatal(err)
		}
		awaitShutdown(srv, *drainDur)
		return
	}

	engine, err := cli.ParseEngine(*engineName)
	if err != nil {
		fatal(err)
	}
	cluster, err := cli.BuildCluster(cli.ClusterOptions{
		Workers:     *workers,
		MapSlots:    *mapSlots,
		ReduceSlots: *reduceSlots,
		Seed:        *seed,
		Scheduler:   *scheduler,
		Speculate:   *speculate,
		SlowNodes:   *slowNodes,
	})
	if err != nil {
		fatal(err)
	}
	var arrCfg *arrival.Config
	if *arriveSpec != "" {
		acfg, err := cli.BuildArrivals(*arriveSpec)
		if err != nil {
			fatal(err)
		}
		arrCfg = &acfg
	}
	var specs []mr.JobSpec
	if arrCfg == nil {
		specs, err = cli.BuildJobs(*bench, *inputGB, *reduces, *jobs, *stagger)
		if err != nil {
			fatal(err)
		}
	}

	if *fleetN > 0 {
		runFleet(*fleetN, *fleetWk, engine, cluster, specs, arrCfg, *fleetMix, *seed)
		return
	}

	switch engine {
	case core.EngineHadoopV1:
		cluster.Policy = mr.HadoopV1
	case core.EngineYARN:
		cluster.Policy = mr.YARN
	case core.EngineSMapReduce:
		cluster.Policy = mr.Dynamic
	case core.EngineFairShare, core.EngineCapacityQueue, core.EngineGameTheoretic:
		// Capacity engines layer per-tenant caps over static V1 slots.
		cluster.Policy = mr.HadoopV1
	}
	var tenants []policy.Tenant
	if arrCfg != nil {
		tenants = cli.PolicyTenants(*arrCfg)
	}
	capPolicy, err := cli.BuildCapacityPolicy(engine, tenants)
	if err != nil {
		fatal(err)
	}
	c, err := mr.NewCluster(cluster)
	if err != nil {
		fatal(err)
	}
	if capPolicy != nil {
		if err := c.SetCapacityPolicy(capPolicy); err != nil {
			fatal(err)
		}
	}
	if *traceLog {
		c.Trace = func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
	}
	var mgr *core.SlotManager
	if engine == core.EngineSMapReduce {
		mgr = core.MustNewSlotManager(core.SlotManagerConfig{})
		if err := c.SetController(mgr); err != nil {
			fatal(err)
		}
	}
	if *failAt > 0 {
		c.ScheduleFailure(*failID, *failAt)
	}
	if *chaosSpec != "" {
		text := *chaosSpec
		if data, err := os.ReadFile(*chaosSpec); err == nil {
			text = string(data) // a readable path wins; otherwise treat the value as inline
		}
		sched, err := chaos.ParseSchedule(text)
		if err != nil {
			fatal(err)
		}
		if len(sched.Faults) == 0 {
			fatal(fmt.Errorf("-chaos %q: schedule contains no faults", *chaosSpec))
		}
		if err := sched.Apply(c); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "smrsim: armed %d chaos faults\n%s", len(sched.Faults), sched)
	}
	var log *mr.EventLog
	if *eventsPath != "" {
		log = c.EnableEventLog(0)
	}
	var telem *telemetry.Collector
	if *telemPath != "" || *serveAddr != "" {
		telem = telemetry.NewCollector(0)
		c.EnableTelemetry(telem)
		if mgr != nil {
			mgr.RegisterTelemetry(telem)
		}
	}
	var tracer *trace.Tracer
	if *tracePath != "" || *serveAddr != "" {
		tracer = trace.New(trace.Options{Verbosity: *traceV})
		c.EnableTracing(tracer)
		if mgr != nil {
			mgr.AttachTracer(tracer)
		}
	}

	var srv *serve.Server
	if *serveAddr != "" {
		srv, err = startServer(*serveAddr, serve.Options{
			Workers:     *serveWk,
			Queue:       *serveQueue,
			ArtifactDir: *artifactDir,
			Collector:   telem,
			Tracer:      tracer,
		})
		if err != nil {
			fatal(err)
		}
	}

	var ran []*mr.Job
	if arrCfg != nil {
		src, err := arrival.New(*arrCfg, arrival.RNG(cluster.Seed))
		if err != nil {
			fatal(err)
		}
		ran, err = c.RunArrivals(src)
		if err != nil {
			fatal(err)
		}
	} else {
		ran, err = c.Run(specs...)
		if err != nil {
			fatal(err)
		}
	}
	if srv != nil {
		srv.MarkDone()
	}

	if log != nil {
		f, err := os.Create(*eventsPath)
		if err != nil {
			fatal(err)
		}
		if err := log.WriteJSONL(f); err != nil {
			f.Close()
			fatal(err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "smrsim: wrote %d events to %s\n", len(log.Events()), *eventsPath)
	}
	if *telemPath != "" {
		if err := telemetry.WriteFile(telem, *telemPath); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "smrsim: wrote %d telemetry series (%d ticks) to %s\n",
			len(telem.Names()), telem.Ticks(), *telemPath)
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		if err := tracer.WriteChromeJSON(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "smrsim: wrote %d trace events to %s (open in Perfetto)\n",
			tracer.Len(), *tracePath)
	}

	fmt.Printf("engine: %v   cluster: %d workers, %d/%d initial slots\n",
		engine, cluster.Workers, cluster.MapSlots, cluster.ReduceSlots)
	fmt.Printf("%-20s %10s %10s %10s %12s\n", "job", "map s", "reduce s", "exec s", "MB/s")
	var meanSum, last float64
	for _, j := range ran {
		fmt.Printf("%-20s %10.1f %10.1f %10.1f %12.1f\n",
			j.Spec.Name, j.MapTime(), j.ReduceTime(), j.ExecutionTime(), j.ThroughputMBps())
		meanSum += j.ExecutionTime()
		if j.FinishedAt > last {
			last = j.FinishedAt
		}
	}
	if len(ran) > 1 {
		fmt.Printf("mean exec: %.1f s   last finish: %.1f s\n", meanSum/float64(len(ran)), last)
	}
	if arrCfg != nil || capPolicy != nil {
		printTenantSummary(ran)
	}
	if capPolicy != nil {
		decs := c.CapacityDecisions()
		fmt.Printf("\ncapacity decisions: %d rebalances\n", len(decs))
		if *explain {
			for _, d := range decs {
				fmt.Printf("  %s\n", d)
			}
		}
	}
	if mgr != nil && len(mgr.Decisions()) > 0 {
		fmt.Println("\nslot manager decisions:")
		for _, d := range mgr.Decisions() {
			fmt.Printf("  %s\n", d)
		}
	}
	if *explain {
		if mgr == nil {
			fmt.Println("\n-explain: no slot manager (pick -engine smapreduce)")
		} else if audits := mgr.Explain(); len(audits) == 0 {
			fmt.Println("\n-explain: the slot manager made no decisions")
		} else {
			fmt.Println("\nslot manager audit trail:")
			for i, a := range audits {
				fmt.Printf("decision %d\n%s", i, a.String())
			}
		}
	}
	if tracer != nil {
		fmt.Println("\ntrace summary:")
		fmt.Print(tracer.Summary())
	}
	if *telemPath != "" {
		fmt.Println("\nslot/rate timeline:")
		fmt.Print(experiments.TimelineChart(telem))
	}
	if *history {
		fmt.Println()
		for _, j := range ran {
			fmt.Print(j.Report(c).String())
		}
	}

	if srv != nil {
		fmt.Fprintf(os.Stderr, "smrsim: run finished; still serving on %s (Ctrl-C drains and exits)\n", srv.Addr())
		awaitShutdown(srv, *drainDur)
	}
}

// printTenantSummary aggregates the per-job timeline by tenant: job
// count, mean execution time, worst latency and SLO misses.
func printTenantSummary(ran []*mr.Job) {
	type agg struct {
		jobs   int
		sum    float64
		worst  float64
		misses int
	}
	byTenant := make(map[string]*agg)
	var names []string
	for _, j := range ran {
		name := j.Tenant()
		a := byTenant[name]
		if a == nil {
			a = &agg{}
			byTenant[name] = a
			names = append(names, name)
		}
		a.jobs++
		a.sum += j.ExecutionTime()
		if j.ExecutionTime() > a.worst {
			a.worst = j.ExecutionTime()
		}
		if j.SLOMissed() {
			a.misses++
		}
	}
	sort.Strings(names)
	fmt.Printf("\n%-16s %6s %12s %12s %10s\n", "tenant", "jobs", "mean exec s", "worst exec s", "SLO miss")
	for _, name := range names {
		a := byTenant[name]
		fmt.Printf("%-16s %6d %12.1f %12.1f %10d\n",
			name, a.jobs, a.sum/float64(a.jobs), a.worst, a.misses)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smrsim:", err)
	os.Exit(1)
}
