package main

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"

	"smapreduce/internal/telemetry"
	"smapreduce/internal/trace"
)

// observabilityServer exposes a run's collector and tracer over HTTP:
//
//	/metrics       Prometheus text (gauges, newest sample per series)
//	/trace         Chrome trace-event JSON of everything recorded so far
//	/healthz       {"status":"running"|"done"}
//	/debug/pprof/  the standard Go profiler endpoints
//
// The collector and tracer are internally locked, so the endpoints are
// safe to hit while the simulation is still running — /trace downloads
// a consistent mid-run snapshot (open spans export as begin-only
// events).
type observabilityServer struct {
	ln   net.Listener
	done atomic.Bool
	errc chan error
}

// serveObservability binds addr and starts serving in the background.
// col and tr may each be nil; their endpoints then report 404.
func serveObservability(addr string, col *telemetry.Collector, tr *trace.Tracer) (*observabilityServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &observabilityServer{ln: ln, errc: make(chan error, 1)}

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		status := "running"
		if s.done.Load() {
			status = "done"
		}
		fmt.Fprintf(w, "{\"status\":%q}\n", status)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if col == nil {
			http.Error(w, "telemetry not enabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		col.WritePrometheus(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		if tr == nil {
			http.Error(w, "tracing not enabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", "attachment; filename=\"smrsim-trace.json\"")
		tr.WriteChromeJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	go func() { s.errc <- http.Serve(ln, mux) }()
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *observabilityServer) Addr() string { return s.ln.Addr().String() }

// MarkDone flips /healthz to "done".
func (s *observabilityServer) MarkDone() { s.done.Store(true) }

// Wait blocks until the server stops (normally never — Ctrl-C exits).
func (s *observabilityServer) Wait() error { return <-s.errc }
