package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"smapreduce/internal/serve"
)

// startServer boots the simulation service on addr and prints the
// bound address. The "listening on" line goes to stdout in a fixed
// format so scripts (make serve-smoke) can parse the ephemeral port
// from ":0".
func startServer(addr string, opts serve.Options) (*serve.Server, error) {
	srv, err := serve.New(opts)
	if err != nil {
		return nil, err
	}
	if err := srv.Start(addr); err != nil {
		return nil, err
	}
	fmt.Printf("smrsim: listening on %s\n", srv.Addr())
	fmt.Fprintf(os.Stderr,
		"smrsim: serving /runs /ledger /version /metrics /trace /healthz /debug/pprof on %s\n",
		srv.Addr())
	return srv, nil
}

// awaitShutdown keeps the service up until SIGINT/SIGTERM, then drains
// it gracefully: intake stops, queued and running simulations finish
// (bounded by the -drain deadline), the ledger flushes, and the
// listener closes. This replaces the old serve loop that blocked
// forever and died mid-write on Ctrl-C.
func awaitShutdown(srv *serve.Server, drain time.Duration) {
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	sig := <-sigc
	fmt.Fprintf(os.Stderr, "smrsim: %v: draining runs (deadline %s)\n", sig, drain)
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "smrsim:", err)
	}
	if err := srv.Wait(); err != nil {
		fmt.Fprintln(os.Stderr, "smrsim:", err)
	}
}
