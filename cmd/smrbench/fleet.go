package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"smapreduce/internal/core"
	"smapreduce/internal/fleet"
)

// fleetClusters is the fleet size -fleetjson measures: large enough
// that per-cluster cost dominates pool dispatch, small enough that the
// whole sweep stays in seconds.
const fleetClusters = 256

// fleetPoint is one worker count's measurement.
type fleetPoint struct {
	Workers    int     `json:"workers"`
	WallS      float64 `json:"wall_s"`
	RunsPerSec float64 `json:"runs_per_sec"`
	Speedup    float64 `json:"speedup"`
	Efficiency float64 `json:"efficiency"`
}

// fleetReport is the BENCH_fleet.json schema.
type fleetReport struct {
	Command    string       `json:"command"`
	Clusters   int          `json:"clusters"`
	Engine     string       `json:"engine"`
	Seed       uint64       `json:"seed"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Note       string       `json:"note"`
	Results    []fleetPoint `json:"results"`
}

// fleetSweep returns the worker counts to measure: powers of two from 1
// up to max(GOMAXPROCS, 4), plus GOMAXPROCS itself when it is not a
// power of two — so the curve always shows at least the 1→4 shape and
// always includes the machine's full width.
func fleetSweep() []int {
	maxW := runtime.GOMAXPROCS(0)
	if maxW < 4 {
		maxW = 4
	}
	var sweep []int
	for w := 1; w <= maxW; w *= 2 {
		sweep = append(sweep, w)
	}
	if g := runtime.GOMAXPROCS(0); g > 4 && sweep[len(sweep)-1] != g {
		sweep = append(sweep, g)
	}
	return sweep
}

// writeFleetJSON times the fleet runner over the worker sweep and
// writes the scaling curve. Each point gets one untimed warm-up fleet
// (allocator steady state, matching writeBenchJSON's protocol) and one
// measured fleet; the merged results are cross-checked bit-for-bit
// across worker counts, so the curve cannot silently measure a
// determinism regression.
func writeFleetJSON(seed uint64, path string) error {
	run := func(w int) (float64, *fleet.Result, error) {
		cfg := fleet.Config{
			Clusters: fleetClusters,
			Workers:  w,
			Seed:     seed,
			Engine:   core.EngineSMapReduce,
		}
		if _, err := fleet.Run(cfg); err != nil {
			return 0, nil, err
		}
		start := time.Now()
		res, err := fleet.Run(cfg)
		return time.Since(start).Seconds(), res, err
	}

	var (
		points   []fleetPoint
		baseWall float64
		refSum   uint64
		refDone  int
	)
	for _, w := range fleetSweep() {
		wall, res, err := run(w)
		if err != nil {
			return fmt.Errorf("fleet workers=%d: %w", w, err)
		}
		sum := math.Float64bits(res.Makespan.Sum())
		if len(points) == 0 {
			baseWall, refSum, refDone = wall, sum, res.Completed
		} else if sum != refSum || res.Completed != refDone {
			return fmt.Errorf("fleet workers=%d: merged result diverges from workers=1 (determinism regression)", w)
		}
		points = append(points, fleetPoint{
			Workers:    w,
			WallS:      wall,
			RunsPerSec: fleetClusters / wall,
			Speedup:    baseWall / wall,
			Efficiency: baseWall / wall / float64(w),
		})
	}

	report := fleetReport{
		Command:    "smrbench -fleetjson",
		Clusters:   fleetClusters,
		Engine:     core.EngineSMapReduce.String(),
		Seed:       seed,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note: "speedup is vs workers=1; efficiency = speedup/workers. " +
			"Points with workers > gomaxprocs are oversubscribed: they measure pool overhead, " +
			"not scaling, and efficiency there is expected to fall as 1/workers. " +
			"Regenerate on the target machine (make bench-fleet) for its true curve.",
		Results: points,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	for _, p := range report.Results {
		fmt.Printf("workers %3d   wall %8.3fs   %8.1f runs/s   speedup %5.2fx   efficiency %5.1f%%\n",
			p.Workers, p.WallS, p.RunsPerSec, p.Speedup, 100*p.Efficiency)
	}
	fmt.Printf("wrote %s (gomaxprocs %d)\n", path, report.GOMAXPROCS)
	return nil
}
