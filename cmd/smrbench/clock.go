package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"smapreduce/internal/core"
	"smapreduce/internal/experiments"
	"smapreduce/internal/fleet"
	"smapreduce/internal/sim"
)

// newBenchClock builds a clock in the requested scheduler mode: the
// default timing wheel (current) or the plain 4-ary heap (baseline,
// still a live code path via SMR_HEAP_SCHED=1).
func newBenchClock(heapOnly bool) *sim.Clock {
	c := sim.NewClock()
	c.SetHeapOnly(heapOnly)
	return c
}

// periodicBeatNS measures the steady-state cost of one Step in a
// heartbeat-shaped workload: 64 staggered periodic chains firing
// forever. The wheel re-arms each beat in place; the heap pays a full
// push+sift per beat.
func periodicBeatNS(heapOnly bool, iters int) float64 {
	c := newBenchClock(heapOnly)
	const chains = 64
	for i := 0; i < chains; i++ {
		c.SchedulePeriodic(float64(i)/chains, 1.0, "beat", func() {})
	}
	for i := 0; i < 4*chains; i++ {
		c.Step()
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		c.Step()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}

// churnMixNS measures a scheduler-realistic mix at queue depth ~1000:
// per cycle one schedule-or-reschedule, an occasional cancel, and one
// fire, with delays spread across both wheel levels and the far-future
// heap spill.
func churnMixNS(heapOnly bool, iters int) float64 {
	c := newBenchClock(heapOnly)
	rng := sim.NewRand(7)
	const depth = 1024
	var refs [depth]sim.EventRef
	delay := func() float64 {
		switch v := rng.Float64(); {
		case v < 0.70:
			return rng.Float64() * 3
		case v < 0.95:
			return 4 + rng.Float64()*200
		default:
			return 1100 + rng.Float64()*1000
		}
	}
	for i := range refs {
		refs[i] = c.Schedule(c.Now()+delay(), "seed", func() {})
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		k := i % depth
		if c.EventLive(refs[k]) {
			c.Reschedule(refs[k], c.Now()+delay())
		} else {
			refs[k] = c.Schedule(c.Now()+delay(), "re", func() {})
		}
		j := (i * 31) % depth
		if j != k && c.EventLive(refs[j]) {
			c.Cancel(refs[j])
		}
		c.Step()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}

// figureNS times a figure run in the requested scheduler mode
// (heap-only flows in via SMR_HEAP_SCHED, read at cluster
// construction — experiments builds its own configs). One untimed
// warm-up, then the best of five timed runs: the macro runs are tens
// of milliseconds, where min-of-N is far more stable than a single
// shot.
func figureNS(cfg experiments.Config, heapOnly bool, fn func(experiments.Config) error) (float64, error) {
	if heapOnly {
		os.Setenv("SMR_HEAP_SCHED", "1")
		defer os.Unsetenv("SMR_HEAP_SCHED")
	}
	if err := fn(cfg); err != nil {
		return 0, err
	}
	best := 0.0
	for i := 0; i < 5; i++ {
		start := time.Now()
		if err := fn(cfg); err != nil {
			return 0, err
		}
		if ns := float64(time.Since(start).Nanoseconds()); best == 0 || ns < best {
			best = ns
		}
	}
	return best, nil
}

// fleetRunsPerSec times a 256-cluster fleet at full width in both
// scheduler modes and returns (heap, wheel) runs per second. The
// parallel fleet is the noisiest measurement here — worker scheduling
// jitter and ambient load dwarf per-event cost — so the modes are
// measured in alternating rounds (drift hits both sides equally) and
// each side reports its peak.
func fleetRunsPerSec(seed uint64) (heapBest, wheelBest float64, err error) {
	run := func(heapOnly bool) (float64, error) {
		base := fleet.DefaultClusterConfig()
		base.HeapSched = heapOnly
		cfg := fleet.Config{
			Clusters: fleetClusters,
			Workers:  runtime.GOMAXPROCS(0),
			Seed:     seed,
			Engine:   core.EngineSMapReduce,
			Cluster:  base,
		}
		start := time.Now()
		if _, err := fleet.Run(cfg); err != nil {
			return 0, err
		}
		return fleetClusters / time.Since(start).Seconds(), nil
	}
	if _, err := run(true); err != nil { // warm-up
		return 0, 0, err
	}
	for i := 0; i < 5; i++ {
		h, err := run(true)
		if err != nil {
			return 0, 0, err
		}
		w, err := run(false)
		if err != nil {
			return 0, 0, err
		}
		if h > heapBest {
			heapBest = h
		}
		if w > wheelBest {
			wheelBest = w
		}
	}
	return heapBest, wheelBest, nil
}

// writeClockJSON benchmarks the event scheduler — timing wheel versus
// the heap-only baseline, both live code paths measured this run — at
// micro scale (periodic beat, churn mix) and macro scale (figure
// runs, fleet throughput), and writes BENCH_clock.json. Macro runs are
// pinned to Scale 0.5 to match the other bench modes.
func writeClockJSON(cfg experiments.Config, path string) error {
	cfg.Scale = 0.5
	const microIters = 2_000_000

	heapBeat := periodicBeatNS(true, microIters)
	wheelBeat := periodicBeatNS(false, microIters)
	heapChurn := churnMixNS(true, microIters)
	wheelChurn := churnMixNS(false, microIters)

	fig3 := func(c experiments.Config) error { _, err := experiments.Figure3(c); return err }
	fig4 := func(c experiments.Config) error { _, err := experiments.Figure4(c); return err }
	heapFig3, err := figureNS(cfg, true, fig3)
	if err != nil {
		return fmt.Errorf("figure 3 (heap): %w", err)
	}
	wheelFig3, err := figureNS(cfg, false, fig3)
	if err != nil {
		return fmt.Errorf("figure 3 (wheel): %w", err)
	}
	heapFig4, err := figureNS(cfg, true, fig4)
	if err != nil {
		return fmt.Errorf("figure 4 (heap): %w", err)
	}
	wheelFig4, err := figureNS(cfg, false, fig4)
	if err != nil {
		return fmt.Errorf("figure 4 (wheel): %w", err)
	}
	heapFleet, wheelFleet, err := fleetRunsPerSec(cfg.Seed)
	if err != nil {
		return fmt.Errorf("fleet: %w", err)
	}

	note := "both sides measured this run: baseline = heap-only scheduler (SMR_HEAP_SCHED=1), current = timing wheel"
	report := benchReport{
		Command: "smrbench -clockjson",
		Scale:   cfg.Scale,
		Workers: cfg.Workers,
		Seed:    cfg.Seed,
		Results: []benchEntry{
			{Name: "clock periodic beat (64 chains)", Unit: "ns/op",
				Baseline: heapBeat, Current: wheelBeat,
				Speedup: heapBeat / wheelBeat, Note: note},
			{Name: "clock churn mix (depth 1024)", Unit: "ns/op",
				Baseline: heapChurn, Current: wheelChurn,
				Speedup: heapChurn / wheelChurn, Note: note},
			{Name: "Figure3ExecTime", Unit: "ns/op",
				Baseline: heapFig3, Current: wheelFig3,
				Speedup: heapFig3 / wheelFig3, Note: note},
			{Name: "Figure4Progress", Unit: "ns/op",
				Baseline: heapFig4, Current: wheelFig4,
				Speedup: heapFig4 / wheelFig4, Note: note},
			{Name: fmt.Sprintf("fleet %d clusters", fleetClusters), Unit: "runs/s",
				Baseline: heapFleet, Current: wheelFleet,
				Speedup: wheelFleet / heapFleet,
				Note:    note + "; speedup = current/baseline (higher is better)"},
		},
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	for _, r := range report.Results {
		fmt.Printf("%-36s %-7s baseline %14.1f  current %14.1f  speedup %5.2fx\n",
			r.Name, r.Unit, r.Baseline, r.Current, r.Speedup)
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
