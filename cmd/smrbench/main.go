// Command smrbench regenerates the paper's evaluation figures (Fig. 1
// and Figs. 3–9) on the simulated cluster and prints one table per
// figure — the data behind EXPERIMENTS.md.
//
// Usage:
//
//	smrbench                 # all figures at paper scale
//	smrbench -fig 3 -fig 6   # a subset
//	smrbench -scale 0.25     # quicker, smaller inputs
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"smapreduce/internal/experiments"
	"smapreduce/internal/metrics"
)

// figList collects repeated -fig flags.
type figList []int

func (f *figList) String() string { return fmt.Sprint([]int(*f)) }

func (f *figList) Set(s string) error {
	n, err := strconv.Atoi(s)
	if err != nil {
		return err
	}
	*f = append(*f, n)
	return nil
}

func main() {
	var figs figList
	scale := flag.Float64("scale", 1.0, "input size multiplier (1.0 = paper scale)")
	workers := flag.Int("workers", 16, "task trackers")
	seed := flag.Uint64("seed", 1, "simulation seed")
	trials := flag.Int("trials", 1, "average metrics over N trials (the paper uses 2)")
	csvDir := flag.String("csv", "", "also write each figure's data as CSV into this directory")
	charts := flag.Bool("charts", false, "print an ASCII chart under each figure that has one")
	extras := flag.Bool("extras", false, "also run the beyond-the-paper experiments (ablations, heterogeneous cluster, schedulers, speculation)")
	flag.Var(&figs, "fig", "figure number to run (repeatable; default: all)")
	flag.Parse()

	if len(figs) == 0 {
		figs = figList{1, 3, 4, 5, 6, 7, 8, 9}
	}
	sort.Ints(figs)

	cfg := experiments.Default()
	cfg.Scale = *scale
	cfg.Workers = *workers
	cfg.Seed = *seed
	cfg.Trials = *trials

	type figOut struct {
		table *metrics.Table
		chart string
	}
	type runner struct {
		name string
		run  func() (figOut, error)
	}
	runners := map[int]runner{
		1: {"Figure 1", func() (figOut, error) {
			r, err := experiments.Figure1(cfg)
			if err != nil {
				return figOut{}, err
			}
			return figOut{r.Table(), r.Chart()}, nil
		}},
		3: {"Figure 3", func() (figOut, error) {
			r, err := experiments.Figure3(cfg)
			if err != nil {
				return figOut{}, err
			}
			return figOut{r.Table(), r.Chart()}, nil
		}},
		4: {"Figure 4", func() (figOut, error) {
			r, err := experiments.Figure4(cfg)
			if err != nil {
				return figOut{}, err
			}
			return figOut{r.Table(), r.Chart()}, nil
		}},
		5: {"Figure 5", func() (figOut, error) {
			r, err := experiments.Figure5(cfg)
			if err != nil {
				return figOut{}, err
			}
			return figOut{r.Table(), ""}, nil
		}},
		6: {"Figure 6", func() (figOut, error) {
			r, err := experiments.Figure6(cfg)
			if err != nil {
				return figOut{}, err
			}
			return figOut{r.Table(), r.Chart()}, nil
		}},
		7: {"Figure 7", func() (figOut, error) {
			r, err := experiments.Figure7(cfg)
			if err != nil {
				return figOut{}, err
			}
			return figOut{r.Table(), ""}, nil
		}},
		8: {"Figure 8", func() (figOut, error) {
			r, err := experiments.Figure8(cfg)
			if err != nil {
				return figOut{}, err
			}
			return figOut{r.Table(), r.Chart()}, nil
		}},
		9: {"Figure 9", func() (figOut, error) {
			r, err := experiments.Figure9(cfg)
			if err != nil {
				return figOut{}, err
			}
			return figOut{r.Table(), r.Chart()}, nil
		}},
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "smrbench: %v\n", err)
			os.Exit(1)
		}
	}

	emit := func(slug string, t *metrics.Table) {
		fmt.Print(t.String())
		if *csvDir == "" {
			return
		}
		path := filepath.Join(*csvDir, slug+".csv")
		if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "smrbench: writing %s: %v\n", path, err)
			os.Exit(1)
		}
	}

	fmt.Printf("smrbench: %d workers, scale %.2f, seed %d\n\n", cfg.Workers, cfg.Scale, cfg.Seed)
	var failed []string
	for _, n := range figs {
		r, ok := runners[n]
		if !ok {
			fmt.Fprintf(os.Stderr, "smrbench: no figure %d (figure 2 is the architecture diagram)\n", n)
			continue
		}
		start := time.Now()
		out, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "smrbench: %s failed: %v\n", r.name, err)
			failed = append(failed, r.name)
			continue
		}
		emit(fmt.Sprintf("fig%d", n), out.table)
		if *charts && out.chart != "" {
			fmt.Print(out.chart)
		}
		fmt.Printf("(%s regenerated in %v)\n\n", r.name, time.Since(start).Round(time.Millisecond))
	}

	if *extras {
		type extra struct {
			slug string
			run  func() (*metrics.Table, error)
		}
		extraRuns := []extra{
			{"ablation-bounds", func() (*metrics.Table, error) {
				r, err := experiments.AblationBounds(cfg)
				if err != nil {
					return nil, err
				}
				return r.Table(), nil
			}},
			{"ablation-slowstart", func() (*metrics.Table, error) {
				r, err := experiments.AblationSlowStart(cfg)
				if err != nil {
					return nil, err
				}
				return r.Table(), nil
			}},
			{"ablation-confirmations", func() (*metrics.Table, error) {
				r, err := experiments.AblationConfirmations(cfg)
				if err != nil {
					return nil, err
				}
				return r.Table(), nil
			}},
			{"ablation-lazy-eager", func() (*metrics.Table, error) {
				r, err := experiments.AblationLazyVsEager(cfg)
				if err != nil {
					return nil, err
				}
				return r.Table(), nil
			}},
			{"ablation-tailboost", func() (*metrics.Table, error) {
				r, err := experiments.AblationTailBoost(cfg)
				if err != nil {
					return nil, err
				}
				return r.Table(), nil
			}},
			{"heterogeneous", func() (*metrics.Table, error) {
				r, err := experiments.Heterogeneous(cfg)
				if err != nil {
					return nil, err
				}
				return r.Table(), nil
			}},
			{"schedulers", func() (*metrics.Table, error) {
				r, err := experiments.Schedulers(cfg)
				if err != nil {
					return nil, err
				}
				return r.Table(), nil
			}},
			{"speculation", func() (*metrics.Table, error) {
				r, err := experiments.Speculation(cfg)
				if err != nil {
					return nil, err
				}
				return r.Table(), nil
			}},
			{"oversubscription", func() (*metrics.Table, error) {
				r, err := experiments.Oversubscription(cfg)
				if err != nil {
					return nil, err
				}
				return r.Table(), nil
			}},
			{"oracle-gap", func() (*metrics.Table, error) {
				r, err := experiments.OracleGap(cfg)
				if err != nil {
					return nil, err
				}
				return r.Table(), nil
			}},
			{"controllers", func() (*metrics.Table, error) {
				r, err := experiments.ControllerComparison(cfg)
				if err != nil {
					return nil, err
				}
				return r.Table(), nil
			}},
			{"skew", func() (*metrics.Table, error) {
				r, err := experiments.SkewSensitivity(cfg)
				if err != nil {
					return nil, err
				}
				return r.Table(), nil
			}},
			{"trace", func() (*metrics.Table, error) {
				r, err := experiments.TraceWorkload(cfg)
				if err != nil {
					return nil, err
				}
				return r.Table(), nil
			}},
		}
		for _, e := range extraRuns {
			start := time.Now()
			t, err := e.run()
			if err != nil {
				fmt.Fprintf(os.Stderr, "smrbench: %s failed: %v\n", e.slug, err)
				failed = append(failed, e.slug)
				continue
			}
			emit(e.slug, t)
			fmt.Printf("(%s in %v)\n\n", e.slug, time.Since(start).Round(time.Millisecond))
		}
	}

	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "smrbench: failed: %s\n", strings.Join(failed, ", "))
		os.Exit(1)
	}
}
