// Command smrbench regenerates the paper's evaluation figures (Fig. 1
// and Figs. 3–9) on the simulated cluster and prints one table per
// figure — the data behind EXPERIMENTS.md.
//
// Usage:
//
//	smrbench                 # all figures at paper scale
//	smrbench -fig 3 -fig 6   # a subset
//	smrbench -scale 0.25     # quicker, smaller inputs
//	smrbench -benchjson      # time the fluid resolver, write BENCH_fluid.json
//	smrbench -memjson        # measure allocs/bytes/GC, write BENCH_alloc.json
//	smrbench -fleetjson      # time the fleet runner's scaling curve, write BENCH_fleet.json
//	smrbench -clockjson      # benchmark the event scheduler (wheel vs heap), write BENCH_clock.json
//
// Any mode accepts -cpuprofile / -memprofile to write pprof profiles
// of the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"smapreduce/internal/experiments"
	"smapreduce/internal/metrics"
	"smapreduce/internal/netsim"
	"smapreduce/internal/telemetry"
	"smapreduce/internal/trace"
)

// figList collects repeated -fig flags.
type figList []int

func (f *figList) String() string { return fmt.Sprint([]int(*f)) }

func (f *figList) Set(s string) error {
	n, err := strconv.Atoi(s)
	if err != nil {
		return err
	}
	*f = append(*f, n)
	return nil
}

func main() {
	var figs figList
	scale := flag.Float64("scale", 1.0, "input size multiplier (1.0 = paper scale)")
	workers := flag.Int("workers", 16, "task trackers")
	seed := flag.Uint64("seed", 1, "simulation seed")
	trials := flag.Int("trials", 1, "average metrics over N trials (the paper uses 2)")
	csvDir := flag.String("csv", "", "also write each figure's data as CSV into this directory")
	charts := flag.Bool("charts", false, "print an ASCII chart under each figure that has one")
	extras := flag.Bool("extras", false, "also run the beyond-the-paper experiments (ablations, heterogeneous cluster, schedulers, speculation)")
	benchJSON := flag.Bool("benchjson", false, "time the fluid-rate resolver (figure macro-runs and netsim churn) and write BENCH_fluid.json instead of running figures")
	memJSON := flag.Bool("memjson", false, "measure heap behaviour (allocs/op, bytes/op, GC cycles) of the figure macro-runs and the netsim churn loop, write BENCH_alloc.json instead of running figures")
	fleetJSON := flag.Bool("fleetjson", false, "time a 256-cluster fleet at worker counts 1,2,4,… and write the scaling curve to BENCH_fleet.json instead of running figures")
	clockJSON := flag.Bool("clockjson", false, "benchmark the event scheduler — timing wheel vs heap-only baseline, micro and macro — and write BENCH_clock.json instead of running figures")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at the end of the run to this file")
	tenantJSON := flag.Bool("tenantjson", false, "run the multi-tenant capacity shoot-out (every engine × offered loads on identical open arrival streams) and write BENCH_tenant.json instead of running figures")
	telemPath := flag.String("telemetry", "", "capture a seeded SMapReduce histogram-ratings run, write its telemetry series to this file (CSV if it ends in .csv, else JSONL) and print the slot/rate timeline instead of running figures")
	tracePath := flag.String("trace", "", "capture a seeded SMapReduce histogram-ratings run and write its Chrome trace-event JSON to this file (combinable with -telemetry) instead of running figures")
	flag.Var(&figs, "fig", "figure number to run (repeatable; default: all)")
	flag.Parse()

	if len(figs) == 0 {
		figs = figList{1, 3, 4, 5, 6, 7, 8, 9}
	}
	sort.Ints(figs)

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "smrbench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "smrbench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "smrbench: %v\n", err)
				return
			}
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "smrbench: %v\n", err)
			}
			f.Close()
		}()
	}

	cfg := experiments.Default()
	cfg.Scale = *scale
	cfg.Workers = *workers
	cfg.Seed = *seed
	cfg.Trials = *trials

	if *benchJSON {
		if err := writeBenchJSON(cfg, "BENCH_fluid.json"); err != nil {
			fmt.Fprintf(os.Stderr, "smrbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *memJSON {
		if err := writeMemJSON(cfg, "BENCH_alloc.json"); err != nil {
			fmt.Fprintf(os.Stderr, "smrbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *fleetJSON {
		if err := writeFleetJSON(*seed, "BENCH_fleet.json"); err != nil {
			fmt.Fprintf(os.Stderr, "smrbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *clockJSON {
		if err := writeClockJSON(cfg, "BENCH_clock.json"); err != nil {
			fmt.Fprintf(os.Stderr, "smrbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *tenantJSON {
		if err := writeTenantJSON(cfg, "BENCH_tenant.json"); err != nil {
			fmt.Fprintf(os.Stderr, "smrbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *telemPath != "" || *tracePath != "" {
		if err := captureTelemetry(cfg, *telemPath, *tracePath); err != nil {
			fmt.Fprintf(os.Stderr, "smrbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	type figOut struct {
		table *metrics.Table
		chart string
	}
	type runner struct {
		name string
		run  func() (figOut, error)
	}
	runners := map[int]runner{
		1: {"Figure 1", func() (figOut, error) {
			r, err := experiments.Figure1(cfg)
			if err != nil {
				return figOut{}, err
			}
			return figOut{r.Table(), r.Chart()}, nil
		}},
		3: {"Figure 3", func() (figOut, error) {
			r, err := experiments.Figure3(cfg)
			if err != nil {
				return figOut{}, err
			}
			return figOut{r.Table(), r.Chart()}, nil
		}},
		4: {"Figure 4", func() (figOut, error) {
			r, err := experiments.Figure4(cfg)
			if err != nil {
				return figOut{}, err
			}
			return figOut{r.Table(), r.Chart()}, nil
		}},
		5: {"Figure 5", func() (figOut, error) {
			r, err := experiments.Figure5(cfg)
			if err != nil {
				return figOut{}, err
			}
			return figOut{r.Table(), ""}, nil
		}},
		6: {"Figure 6", func() (figOut, error) {
			r, err := experiments.Figure6(cfg)
			if err != nil {
				return figOut{}, err
			}
			return figOut{r.Table(), r.Chart()}, nil
		}},
		7: {"Figure 7", func() (figOut, error) {
			r, err := experiments.Figure7(cfg)
			if err != nil {
				return figOut{}, err
			}
			return figOut{r.Table(), ""}, nil
		}},
		8: {"Figure 8", func() (figOut, error) {
			r, err := experiments.Figure8(cfg)
			if err != nil {
				return figOut{}, err
			}
			return figOut{r.Table(), r.Chart()}, nil
		}},
		9: {"Figure 9", func() (figOut, error) {
			r, err := experiments.Figure9(cfg)
			if err != nil {
				return figOut{}, err
			}
			return figOut{r.Table(), r.Chart()}, nil
		}},
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "smrbench: %v\n", err)
			os.Exit(1)
		}
	}

	emit := func(slug string, t *metrics.Table) {
		fmt.Print(t.String())
		if *csvDir == "" {
			return
		}
		path := filepath.Join(*csvDir, slug+".csv")
		if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "smrbench: writing %s: %v\n", path, err)
			os.Exit(1)
		}
	}

	fmt.Printf("smrbench: %d workers, scale %.2f, seed %d\n\n", cfg.Workers, cfg.Scale, cfg.Seed)
	var failed []string
	for _, n := range figs {
		r, ok := runners[n]
		if !ok {
			fmt.Fprintf(os.Stderr, "smrbench: no figure %d (figure 2 is the architecture diagram)\n", n)
			continue
		}
		start := time.Now()
		out, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "smrbench: %s failed: %v\n", r.name, err)
			failed = append(failed, r.name)
			continue
		}
		emit(fmt.Sprintf("fig%d", n), out.table)
		if *charts && out.chart != "" {
			fmt.Print(out.chart)
		}
		fmt.Printf("(%s regenerated in %v)\n\n", r.name, time.Since(start).Round(time.Millisecond))
	}

	if *extras {
		type extra struct {
			slug string
			run  func() (*metrics.Table, error)
		}
		extraRuns := []extra{
			{"ablation-bounds", func() (*metrics.Table, error) {
				r, err := experiments.AblationBounds(cfg)
				if err != nil {
					return nil, err
				}
				return r.Table(), nil
			}},
			{"ablation-slowstart", func() (*metrics.Table, error) {
				r, err := experiments.AblationSlowStart(cfg)
				if err != nil {
					return nil, err
				}
				return r.Table(), nil
			}},
			{"ablation-confirmations", func() (*metrics.Table, error) {
				r, err := experiments.AblationConfirmations(cfg)
				if err != nil {
					return nil, err
				}
				return r.Table(), nil
			}},
			{"ablation-lazy-eager", func() (*metrics.Table, error) {
				r, err := experiments.AblationLazyVsEager(cfg)
				if err != nil {
					return nil, err
				}
				return r.Table(), nil
			}},
			{"ablation-tailboost", func() (*metrics.Table, error) {
				r, err := experiments.AblationTailBoost(cfg)
				if err != nil {
					return nil, err
				}
				return r.Table(), nil
			}},
			{"heterogeneous", func() (*metrics.Table, error) {
				r, err := experiments.Heterogeneous(cfg)
				if err != nil {
					return nil, err
				}
				return r.Table(), nil
			}},
			{"schedulers", func() (*metrics.Table, error) {
				r, err := experiments.Schedulers(cfg)
				if err != nil {
					return nil, err
				}
				return r.Table(), nil
			}},
			{"speculation", func() (*metrics.Table, error) {
				r, err := experiments.Speculation(cfg)
				if err != nil {
					return nil, err
				}
				return r.Table(), nil
			}},
			{"oversubscription", func() (*metrics.Table, error) {
				r, err := experiments.Oversubscription(cfg)
				if err != nil {
					return nil, err
				}
				return r.Table(), nil
			}},
			{"oracle-gap", func() (*metrics.Table, error) {
				r, err := experiments.OracleGap(cfg)
				if err != nil {
					return nil, err
				}
				return r.Table(), nil
			}},
			{"controllers", func() (*metrics.Table, error) {
				r, err := experiments.ControllerComparison(cfg)
				if err != nil {
					return nil, err
				}
				return r.Table(), nil
			}},
			{"skew", func() (*metrics.Table, error) {
				r, err := experiments.SkewSensitivity(cfg)
				if err != nil {
					return nil, err
				}
				return r.Table(), nil
			}},
			{"trace", func() (*metrics.Table, error) {
				r, err := experiments.TraceWorkload(cfg)
				if err != nil {
					return nil, err
				}
				return r.Table(), nil
			}},
			{"multitenant", func() (*metrics.Table, error) {
				r, err := experiments.MultiTenantShootout(cfg)
				if err != nil {
					return nil, err
				}
				return r.Table(), nil
			}},
		}
		for _, e := range extraRuns {
			start := time.Now()
			t, err := e.run()
			if err != nil {
				fmt.Fprintf(os.Stderr, "smrbench: %s failed: %v\n", e.slug, err)
				failed = append(failed, e.slug)
				continue
			}
			emit(e.slug, t)
			fmt.Printf("(%s in %v)\n\n", e.slug, time.Since(start).Round(time.Millisecond))
		}
	}

	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "smrbench: failed: %s\n", strings.Join(failed, ", "))
		os.Exit(1)
	}
}

// captureTelemetry runs the seeded histogram-ratings workload on
// SMapReduce with telemetry (and, when tracePath is set, span tracing)
// attached — the Fig. 5/6 trajectory view — writes the requested
// files and prints the regenerated timeline.
func captureTelemetry(cfg experiments.Config, telemPath, tracePath string) error {
	var tr *trace.Tracer
	if tracePath != "" {
		tr = trace.New(trace.Options{})
	}
	col, err := experiments.CaptureTimelineTraced(cfg, "histogram-ratings", 100, tr)
	if err != nil {
		return err
	}
	if telemPath != "" {
		if err := telemetry.WriteFile(col, telemPath); err != nil {
			return err
		}
		fmt.Printf("captured %d series over %d ticks -> %s\n", len(col.Names()), col.Ticks(), telemPath)
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		err = tr.WriteChromeJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("captured %d trace events -> %s (open in Perfetto)\n", tr.Len(), tracePath)
	}
	fmt.Println()
	fmt.Print(experiments.TimelineChart(col))
	return nil
}

// tenantRow is one (engine, load) cell of the shoot-out as written to
// BENCH_tenant.json.
type tenantRow struct {
	Engine    string  `json:"engine"`
	Load      float64 `json:"load"`
	Jobs      int     `json:"jobs"`
	Makespan  float64 `json:"makespan_s"`
	P50       float64 `json:"p50_s"`
	P99       float64 `json:"p99_s"`
	SLOMisses int     `json:"slo_misses"`
}

type tenantReport struct {
	Command string      `json:"command"`
	Scale   float64     `json:"scale"`
	Workers int         `json:"workers"`
	Seed    uint64      `json:"seed"`
	Rows    []tenantRow `json:"rows"`
}

// writeTenantJSON runs the multi-tenant capacity-policy shoot-out —
// every engine replays the identical open arrival stream at each
// offered-load multiplier — prints the table and writes the rows to
// BENCH_tenant.json.
func writeTenantJSON(cfg experiments.Config, path string) error {
	r, err := experiments.MultiTenantShootout(cfg)
	if err != nil {
		return err
	}
	report := tenantReport{
		Command: "smrbench -tenantjson",
		Scale:   cfg.Scale,
		Workers: cfg.Workers,
		Seed:    cfg.Seed,
		Rows:    make([]tenantRow, len(r.Rows)),
	}
	for i, row := range r.Rows {
		report.Rows[i] = tenantRow{
			Engine:    row.Engine.String(),
			Load:      row.Load,
			Jobs:      row.Jobs,
			Makespan:  row.Makespan,
			P50:       row.P50,
			P99:       row.P99,
			SLOMisses: row.SLOMisses,
		}
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Print(r.Table().String())
	fmt.Printf("wrote %s\n", path)
	return nil
}

// Pre-optimisation ns/op for the macro benchmarks (`go test -bench` on
// the eager resolver: full fabric Recompute plus settleAll/refreshAll
// on every mutation scope), recorded on the reference machine before
// the incremental dirty-set resolver landed. The churn micro-bench
// needs no recorded constant — its baseline (from-scratch Recompute
// per event) is still a live code path and is re-measured each run.
const (
	baselineFigure3NS = 1409544061.0
	baselineFigure4NS = 177623788.0
)

type benchEntry struct {
	Name     string  `json:"name"`
	Unit     string  `json:"unit"`
	Baseline float64 `json:"baseline"`
	Current  float64 `json:"current"`
	Speedup  float64 `json:"speedup"`
	Note     string  `json:"note,omitempty"`
}

type benchReport struct {
	Command string       `json:"command"`
	Scale   float64      `json:"scale"`
	Workers int          `json:"workers"`
	Seed    uint64       `json:"seed"`
	Results []benchEntry `json:"results"`
}

// writeBenchJSON times the fluid-rate resolver and records baseline
// versus current ns/op: the two figure macro-runs the optimisation
// targets, and the netsim churn micro-benchmark in both resolve modes.
// The figure runs are pinned to the root benchmark suite's shape
// (Scale 0.5, the shape the baseline constants were recorded at) so
// baseline and current stay comparable regardless of -scale.
func writeBenchJSON(cfg experiments.Config, path string) error {
	cfg.Scale = 0.5
	// One untimed warm-up run before each measurement so the numbers
	// reflect steady state (allocator and GC heap sizing), matching
	// what `go test -bench` reports over its iterations.
	timeIt := func(fn func() error) (float64, error) {
		if err := fn(); err != nil {
			return 0, err
		}
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		return float64(time.Since(start).Nanoseconds()), nil
	}

	fig3, err := timeIt(func() error { _, err := experiments.Figure3(cfg); return err })
	if err != nil {
		return fmt.Errorf("figure 3: %w", err)
	}
	fig4, err := timeIt(func() error { _, err := experiments.Figure4(cfg); return err })
	if err != nil {
		return fmt.Errorf("figure 4: %w", err)
	}
	churnFull := churnNSPerOp(false, 30_000)
	churnInc := churnNSPerOp(true, 300_000)

	report := benchReport{
		Command: "smrbench -benchjson",
		Scale:   cfg.Scale,
		Workers: cfg.Workers,
		Seed:    cfg.Seed,
		Results: []benchEntry{
			{
				Name: "Figure3ExecTime", Unit: "ns/op",
				Baseline: baselineFigure3NS, Current: fig3,
				Speedup: baselineFigure3NS / fig3,
				Note:    "baseline recorded pre-optimisation (eager full resolve); current measured this run",
			},
			{
				Name: "Figure4Progress", Unit: "ns/op",
				Baseline: baselineFigure4NS, Current: fig4,
				Speedup: baselineFigure4NS / fig4,
				Note:    "baseline recorded pre-optimisation (eager full resolve); current measured this run",
			},
			{
				Name: "netsim churn (remove+add+resolve)", Unit: "ns/op",
				Baseline: churnFull, Current: churnInc,
				Speedup: churnFull / churnInc,
				Note:    "both sides measured this run: baseline = from-scratch Recompute per event, current = ResolveDirty",
			},
		},
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	for _, r := range report.Results {
		fmt.Printf("%-36s baseline %14.0f  current %14.0f  speedup %5.1fx\n",
			r.Name, r.Baseline, r.Current, r.Speedup)
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// Pre-optimisation heap behaviour of the figure macro-runs, recorded
// at the commit before the event-arena/pooling change with the exact
// protocol writeMemJSON uses (Scale 0.5, one untimed warm-up run,
// runtime.GC, then one measured run bracketed by ReadMemStats). The
// churn loop needs no recorded constants — its unpooled baseline
// (fresh Flow per cycle) is still a live code path and is re-measured
// each run.
const (
	baselineFigure3Allocs = 2901962.0
	baselineFigure3Bytes  = 150734728.0
	baselineFigure3GCs    = 56.0
	baselineFigure4Allocs = 373334.0
	baselineFigure4Bytes  = 20115352.0
	baselineFigure4GCs    = 6.0
)

// heapProbe is one measured run's allocator footprint.
type heapProbe struct {
	allocs float64 // heap objects allocated (Mallocs delta)
	bytes  float64 // bytes allocated (TotalAlloc delta)
	gcs    float64 // GC cycles completed (NumGC delta)
}

// measureHeap runs fn once untimed to reach steady state, forces a
// collection so the measured run starts from a settled heap, then runs
// fn again between two ReadMemStats snapshots.
func measureHeap(fn func() error) (heapProbe, error) {
	if err := fn(); err != nil {
		return heapProbe{}, err
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	if err := fn(); err != nil {
		return heapProbe{}, err
	}
	runtime.ReadMemStats(&m1)
	return heapProbe{
		allocs: float64(m1.Mallocs - m0.Mallocs),
		bytes:  float64(m1.TotalAlloc - m0.TotalAlloc),
		gcs:    float64(m1.NumGC - m0.NumGC),
	}, nil
}

// reduction is baseline/current with the zero-current case pinned: a
// fully pooled loop legitimately hits 0 allocs/op, and +Inf is not
// representable in JSON, so the factor is reported against one whole
// allocation instead.
func reduction(baseline, current float64) float64 {
	if current <= 0 {
		return baseline
	}
	return baseline / current
}

// writeMemJSON measures the allocator footprint of the two figure
// macro-runs (against the recorded pre-optimisation baselines) and of
// the netsim churn loop in pooled versus unpooled mode, and writes
// BENCH_alloc.json. The figure runs are pinned to Scale 0.5 — the
// shape the baselines were recorded at — so the comparison holds
// regardless of -scale.
func writeMemJSON(cfg experiments.Config, path string) error {
	cfg.Scale = 0.5
	fig3, err := measureHeap(func() error { _, err := experiments.Figure3(cfg); return err })
	if err != nil {
		return fmt.Errorf("figure 3: %w", err)
	}
	fig4, err := measureHeap(func() error { _, err := experiments.Figure4(cfg); return err })
	if err != nil {
		return fmt.Errorf("figure 4: %w", err)
	}
	const churnIters = 200_000
	churnUnpooled := churnAllocs(false, churnIters)
	churnPooled := churnAllocs(true, churnIters)

	figNote := "baseline recorded pre-optimisation (pointer-heap events, per-attempt flow/op allocation); current measured this run"
	churnNote := "both sides measured this run: baseline = fresh Flow per churn cycle, current = AcquireFlow/ReleaseFlow pool"
	report := benchReport{
		Command: "smrbench -memjson",
		Scale:   cfg.Scale,
		Workers: cfg.Workers,
		Seed:    cfg.Seed,
		Results: []benchEntry{
			{Name: "Figure3ExecTime", Unit: "allocs/op",
				Baseline: baselineFigure3Allocs, Current: fig3.allocs,
				Speedup: reduction(baselineFigure3Allocs, fig3.allocs), Note: figNote},
			{Name: "Figure3ExecTime", Unit: "B/op",
				Baseline: baselineFigure3Bytes, Current: fig3.bytes,
				Speedup: reduction(baselineFigure3Bytes, fig3.bytes), Note: figNote},
			{Name: "Figure3ExecTime", Unit: "GC cycles/op",
				Baseline: baselineFigure3GCs, Current: fig3.gcs,
				Speedup: reduction(baselineFigure3GCs, fig3.gcs), Note: figNote},
			{Name: "Figure4Progress", Unit: "allocs/op",
				Baseline: baselineFigure4Allocs, Current: fig4.allocs,
				Speedup: reduction(baselineFigure4Allocs, fig4.allocs), Note: figNote},
			{Name: "Figure4Progress", Unit: "B/op",
				Baseline: baselineFigure4Bytes, Current: fig4.bytes,
				Speedup: reduction(baselineFigure4Bytes, fig4.bytes), Note: figNote},
			{Name: "Figure4Progress", Unit: "GC cycles/op",
				Baseline: baselineFigure4GCs, Current: fig4.gcs,
				Speedup: reduction(baselineFigure4GCs, fig4.gcs), Note: figNote},
			{Name: "netsim churn (remove+add+resolve)", Unit: "allocs/op",
				Baseline: churnUnpooled.allocs, Current: churnPooled.allocs,
				Speedup: reduction(churnUnpooled.allocs, churnPooled.allocs), Note: churnNote},
			{Name: "netsim churn (remove+add+resolve)", Unit: "B/op",
				Baseline: churnUnpooled.bytes, Current: churnPooled.bytes,
				Speedup: reduction(churnUnpooled.bytes, churnPooled.bytes), Note: churnNote},
		},
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	for _, r := range report.Results {
		fmt.Printf("%-36s %-12s baseline %14.2f  current %14.2f  reduction %7.1fx\n",
			r.Name, r.Unit, r.Baseline, r.Current, r.Speedup)
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// churnAllocs reuses the churnNSPerOp topology but reports per-cycle
// allocator cost: each cycle retires one flow and starts a replacement,
// either through the fabric's free-list pool or with a fresh object.
func churnAllocs(pooled bool, iters int) heapProbe {
	fb := netsim.NewFabric(netsim.DefaultConfig(128))
	fb.SetAutoRecompute(false)
	var live []*netsim.Flow
	for g := 0; g < 32; g++ {
		dst := 4 * g
		for k := 0; k < 5; k++ {
			f := fb.AcquireFlow()
			f.Src, f.Dst, f.RemainingMB, f.CapMBps = dst+1+k%3, dst, 100, 3.5
			fb.Add(f)
			live = append(live, f)
		}
	}
	fb.Recompute()
	cycle := func() {
		for i := 0; i < iters; i++ {
			j := i % len(live)
			old := live[j]
			src, dst := old.Src, old.Dst
			fb.Remove(old)
			var nf *netsim.Flow
			if pooled {
				fb.ReleaseFlow(old)
				nf = fb.AcquireFlow()
			} else {
				nf = &netsim.Flow{}
			}
			nf.Src, nf.Dst, nf.RemainingMB, nf.CapMBps = src, dst, 100, 3.5
			fb.Add(nf)
			live[j] = nf
			fb.ResolveDirty()
		}
	}
	probe, _ := measureHeap(func() error { cycle(); return nil })
	probe.allocs /= float64(iters)
	probe.bytes /= float64(iters)
	return probe
}

// churnNSPerOp reproduces the netsim BenchmarkChurn topology — 32
// link-disjoint reducer fan-ins on a 128-node fabric — and times one
// steady-state remove+add+resolve cycle.
func churnNSPerOp(incremental bool, iters int) float64 {
	fb := netsim.NewFabric(netsim.DefaultConfig(128))
	fb.SetAutoRecompute(false)
	var live []*netsim.Flow
	for g := 0; g < 32; g++ {
		dst := 4 * g
		for k := 0; k < 5; k++ {
			f := &netsim.Flow{Src: dst + 1 + k%3, Dst: dst, RemainingMB: 100, CapMBps: 3.5}
			fb.Add(f)
			live = append(live, f)
		}
	}
	fb.Recompute()
	start := time.Now()
	for i := 0; i < iters; i++ {
		j := i % len(live)
		old := live[j]
		fb.Remove(old)
		nf := &netsim.Flow{Src: old.Src, Dst: old.Dst, RemainingMB: 100, CapMBps: 3.5}
		fb.Add(nf)
		live[j] = nf
		if incremental {
			fb.ResolveDirty()
		} else {
			fb.Recompute()
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}
