// Command ledgercheck verifies a simulation-service run ledger
// offline: the hash-linked chain of entries (contiguous indices, prev
// links, Merkle roots and entry hashes all recompute) and, unless
// -chain-only, every recorded artifact byte-for-byte against the
// artifact store.
//
// Usage:
//
//	ledgercheck artifacts/ledger.jsonl
//	ledgercheck -chain-only downloaded-ledger.jsonl
//	ledgercheck -artifacts /srv/smr/artifacts /tmp/ledger.jsonl
//
// The artifact store root defaults to the ledger file's directory —
// the layout smrsim's -artifact-dir writes (<root>/<runID>/<name>).
// Exit status is 0 only when everything verifies.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"smapreduce/internal/serve/ledger"
)

func main() {
	chainOnly := flag.Bool("chain-only", false, "verify only the hash chain, not artifact contents")
	artifacts := flag.String("artifacts", "", "artifact store root (default: the ledger file's directory)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ledgercheck [-chain-only] [-artifacts DIR] LEDGER.jsonl")
		os.Exit(2)
	}
	path := flag.Arg(0)

	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	entries, err := ledger.ParseJSONL(data)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	if err := ledger.VerifyChain(entries); err != nil {
		fatal(fmt.Errorf("%s: chain verification failed: %w", path, err))
	}
	fmt.Printf("ledgercheck: chain OK (%d entries)\n", len(entries))
	if *chainOnly || len(entries) == 0 {
		return
	}

	root := *artifacts
	if root == "" {
		root = filepath.Dir(path)
	}
	files := 0
	for _, e := range entries {
		err := ledger.VerifyArtifacts(e, func(name string) ([]byte, error) {
			return os.ReadFile(filepath.Join(root, e.RunID, name))
		})
		if err != nil {
			fatal(fmt.Errorf("artifact verification failed: %w", err))
		}
		files += len(e.Artifacts)
	}
	fmt.Printf("ledgercheck: artifacts OK (%d files across %d runs)\n", files, len(entries))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ledgercheck:", err)
	os.Exit(1)
}
