// Command tracecheck validates a Chrome trace-event JSON file as
// produced by smrsim/smrbench -trace: it must parse, contain at least
// one event, and every event must carry a phase. Used by the CI smoke
// job; prints a per-phase count summary on success.
//
// Usage:
//
//	tracecheck run.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

type traceDoc struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Ph   string   `json:"ph"`
	Pid  int      `json:"pid"`
	Tid  int      `json:"tid"`
	Ts   *float64 `json:"ts"`
	Dur  *float64 `json:"dur"`
	Name string   `json:"name"`
	Cat  string   `json:"cat"`
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json>")
		os.Exit(2)
	}
	path := os.Args[1]
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		fatal(fmt.Errorf("%s: not valid trace JSON: %w", path, err))
	}
	if len(doc.TraceEvents) == 0 {
		fatal(fmt.Errorf("%s: trace holds no events", path))
	}
	phases := map[string]int{}
	for i, ev := range doc.TraceEvents {
		if ev.Ph == "" {
			fatal(fmt.Errorf("%s: event %d has no phase", path, i))
		}
		if ev.Ph != "M" && ev.Ts == nil {
			fatal(fmt.Errorf("%s: event %d (%q) has no timestamp", path, i, ev.Name))
		}
		if ev.Ph == "X" && ev.Dur == nil {
			fatal(fmt.Errorf("%s: complete event %d (%q) has no duration", path, i, ev.Name))
		}
		phases[ev.Ph]++
	}
	keys := make([]string, 0, len(phases))
	for k := range phases {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Printf("%s: %d events ok", path, len(doc.TraceEvents))
	for _, k := range keys {
		fmt.Printf("  %s=%d", k, phases[k])
	}
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracecheck:", err)
	os.Exit(1)
}
