// Command smrgrid drives declarative experiment grids (internal/grid):
// a JSON spec declaring engines × workloads × scales × seeds expands
// into cells that run in parallel, journal per-cell completion, and
// land as validated CSV + JSON + markdown tables in a timestamped
// paper_runs directory.
//
// Usage:
//
//	smrgrid run -spec experiments/smoke.json            # fresh sweep into paper_runs/<ts>/
//	smrgrid run -spec grid.json -out dir -workers 4     # explicit directory and parallelism
//	smrgrid resume -out dir                             # finish an interrupted sweep
//	smrgrid validate -out dir                           # re-validate a finished sweep's CSV
//
// An interrupted run (Ctrl-C, crash) leaves its journal behind;
// `smrgrid resume` skips journaled cells and — because every repeat's
// seed is a pure function of its cell — produces final artifacts
// byte-identical to an uninterrupted run. Exit code 2 means
// interrupted-but-resumable.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"time"

	"smapreduce/internal/grid"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable streams and status code, so the whole
// command is testable in-process.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 1
	}
	var err error
	switch args[0] {
	case "run":
		err = cmdRun(args[1:], stdout)
	case "resume":
		err = cmdResume(args[1:], stdout)
	case "validate":
		err = cmdValidate(args[1:], stdout)
	case "-h", "-help", "--help", "help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "smrgrid: unknown subcommand %q\n", args[0])
		usage(stderr)
		return 1
	}
	if errors.Is(err, grid.ErrInterrupted) {
		fmt.Fprintf(stderr, "smrgrid: %v\n", err)
		return 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "smrgrid: %v\n", err)
		return 1
	}
	return 0
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage:
  smrgrid run      -spec <file> [-out dir] [-workers n] [-quiet]
  smrgrid resume   -out <dir> [-workers n] [-quiet]
  smrgrid validate -out <dir>
`)
}

// cmdRun starts a fresh sweep: parse the spec, create the directory
// (default paper_runs/<timestamp>), persist the canonical spec, run.
func cmdRun(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("smrgrid run", flag.ContinueOnError)
	specPath := fs.String("spec", "", "grid spec JSON file (required)")
	out := fs.String("out", "", "run directory (default paper_runs/<timestamp>)")
	workers := fs.Int("workers", 0, "parallel cell workers (0 = GOMAXPROCS, or SMR_WORKERS)")
	quiet := fs.Bool("quiet", false, "suppress per-cell progress lines on stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath == "" {
		return fmt.Errorf("run: -spec is required")
	}
	data, err := os.ReadFile(*specPath)
	if err != nil {
		return err
	}
	spec, err := grid.ParseSpec(data)
	if err != nil {
		return err
	}
	dir := *out
	if dir == "" {
		dir = filepath.Join("paper_runs", time.Now().Format("2006-01-02_150405"))
	}
	if _, err := os.Stat(filepath.Join(dir, grid.JournalFile)); err == nil {
		return fmt.Errorf("run: %s already holds a journal; use `smrgrid resume -out %s`", dir, dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, grid.SpecFile), spec.Canonical(), 0o644); err != nil {
		return err
	}
	return sweep(spec, dir, *workers, *quiet, stdout)
}

// cmdResume finishes an interrupted sweep from its persisted spec.
func cmdResume(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("smrgrid resume", flag.ContinueOnError)
	out := fs.String("out", "", "run directory of the interrupted sweep (required)")
	workers := fs.Int("workers", 0, "parallel cell workers (0 = GOMAXPROCS, or SMR_WORKERS)")
	quiet := fs.Bool("quiet", false, "suppress per-cell progress lines on stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := readSpec(*out)
	if err != nil {
		return err
	}
	return sweep(spec, *out, *workers, *quiet, stdout)
}

// cmdValidate re-checks a finished sweep: the CSV against the spec's
// schema and cell set, and the presence of the sibling artifacts.
func cmdValidate(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("smrgrid validate", flag.ContinueOnError)
	out := fs.String("out", "", "run directory to validate (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := readSpec(*out)
	if err != nil {
		return err
	}
	csv, err := os.ReadFile(filepath.Join(*out, grid.GridCSV))
	if err != nil {
		return fmt.Errorf("validate: %w (incomplete sweep? try `smrgrid resume -out %s`)", err, *out)
	}
	if err := grid.ValidateCSV(spec, csv); err != nil {
		return err
	}
	for _, name := range []string{grid.GridJSON, grid.AnalysisTables} {
		if _, err := os.Stat(filepath.Join(*out, name)); err != nil {
			return fmt.Errorf("validate: missing artifact: %w", err)
		}
	}
	cells := grid.Expand(spec)
	fmt.Fprintf(stdout, "grid OK: %d cells × %d metrics × %d repeats, csv and artifacts valid in %s\n",
		len(cells), len(grid.MetricNames), spec.Repeats, *out)
	return nil
}

// readSpec loads the canonical spec a run directory was started with.
func readSpec(dir string) (*grid.Spec, error) {
	if dir == "" {
		return nil, fmt.Errorf("-out is required")
	}
	data, err := os.ReadFile(filepath.Join(dir, grid.SpecFile))
	if err != nil {
		return nil, err
	}
	return grid.ParseSpec(data)
}

// sweep executes (or resumes) the grid with SIGINT/SIGTERM wired to a
// graceful interrupt: in-flight cells finish and are journaled, then
// the run exits resumable.
func sweep(spec *grid.Spec, dir string, workers int, quiet bool, stdout io.Writer) error {
	if err := os.MkdirAll(filepath.Join(dir, "logs"), 0o755); err != nil {
		return err
	}
	logFile, err := os.OpenFile(filepath.Join(dir, grid.RunLog), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer logFile.Close()
	var log io.Writer = logFile
	if !quiet {
		log = io.MultiWriter(stdout, logFile)
	}

	var stop atomic.Bool
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer func() { signal.Stop(sigs); close(sigs) }() // unblocks the watcher goroutine
	go func() {
		if _, ok := <-sigs; ok {
			stop.Store(true)
		}
	}()

	_, err = grid.Run(grid.RunOptions{
		Spec:     spec,
		Dir:      dir,
		Workers:  workers,
		Stopping: stop.Load,
		Log:      log,
	})
	return err
}
