package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smapreduce/internal/grid"
)

const tinySpec = `{
  "name": "tiny",
  "repeats": 1,
  "seeds": [1],
  "engines": ["hadoop", "smr"],
  "scales": [{"name": "w4", "workers": 4, "input_scale": 0.25}],
  "workloads": [{"name": "one-grep", "jobs": [{"benchmark": "grep", "input_gb": 1, "reduces": 2}]}]
}`

// writeSpec drops tinySpec into a temp file and returns its path.
func writeSpec(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(tinySpec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// exec drives the command in-process and returns (exit code, stdout,
// stderr).
func exec(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestRunThenValidate(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "out")
	code, _, stderr := exec(t, "run", "-spec", writeSpec(t), "-out", dir, "-quiet")
	if code != 0 {
		t.Fatalf("run exited %d: %s", code, stderr)
	}
	for _, name := range []string{grid.SpecFile, grid.JournalFile, grid.GridCSV, grid.GridJSON, grid.AnalysisTables, grid.RunLog} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("run left no %s: %v", name, err)
		}
	}
	code, stdout, stderr := exec(t, "validate", "-out", dir)
	if code != 0 {
		t.Fatalf("validate exited %d: %s", code, stderr)
	}
	if !strings.Contains(stdout, "grid OK: 2 cells") {
		t.Errorf("validate stdout = %q, want a grid OK summary", stdout)
	}
}

func TestRunRefusesDirWithJournal(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "out")
	spec := writeSpec(t)
	if code, _, stderr := exec(t, "run", "-spec", spec, "-out", dir, "-quiet"); code != 0 {
		t.Fatalf("first run exited %d: %s", code, stderr)
	}
	code, _, stderr := exec(t, "run", "-spec", spec, "-out", dir, "-quiet")
	if code != 1 || !strings.Contains(stderr, "resume") {
		t.Errorf("rerun into a journaled dir: code %d, stderr %q; want 1 and a resume hint", code, stderr)
	}
}

// TestResumeFinishedRun checks resume is a safe no-op on a finished
// directory and keeps the artifacts byte-identical.
func TestResumeFinishedRun(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "out")
	if code, _, stderr := exec(t, "run", "-spec", writeSpec(t), "-out", dir, "-quiet"); code != 0 {
		t.Fatalf("run exited %d: %s", code, stderr)
	}
	before, err := os.ReadFile(filepath.Join(dir, grid.GridCSV))
	if err != nil {
		t.Fatal(err)
	}
	if code, _, stderr := exec(t, "resume", "-out", dir, "-quiet"); code != 0 {
		t.Fatalf("resume exited %d: %s", code, stderr)
	}
	after, err := os.ReadFile(filepath.Join(dir, grid.GridCSV))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("resume of a finished run changed grid.csv")
	}
}

func TestValidateIncompleteRunHintsResume(t *testing.T) {
	// A directory holding only the spec (interrupted before any
	// artifact) must fail validation with a resume hint.
	dir := t.TempDir()
	spec, err := grid.ParseSpec([]byte(tinySpec))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, grid.SpecFile), spec.Canonical(), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := exec(t, "validate", "-out", dir)
	if code != 1 || !strings.Contains(stderr, "resume") {
		t.Errorf("validate on an incomplete run: code %d, stderr %q; want 1 and a resume hint", code, stderr)
	}
}

func TestUsageAndBadInvocations(t *testing.T) {
	cases := []struct {
		args []string
		code int
		err  string // required substring of stderr
	}{
		{nil, 1, "usage"},
		{[]string{"help"}, 0, ""},
		{[]string{"-h"}, 0, ""},
		{[]string{"frobnicate"}, 1, "unknown subcommand"},
		{[]string{"run"}, 1, "-spec is required"},
		{[]string{"run", "-spec", "/does/not/exist.json"}, 1, "no such file"},
		{[]string{"resume"}, 1, "-out is required"},
		{[]string{"validate"}, 1, "-out is required"},
		{[]string{"validate", "-out", "/does/not/exist"}, 1, "no such file"},
	}
	for _, tc := range cases {
		code, _, stderr := exec(t, tc.args...)
		if code != tc.code {
			t.Errorf("%v: exited %d, want %d (stderr %q)", tc.args, code, tc.code, stderr)
		}
		if tc.err != "" && !strings.Contains(stderr, tc.err) {
			t.Errorf("%v: stderr %q, want it to mention %q", tc.args, stderr, tc.err)
		}
	}
}

func TestRunRejectsBadSpec(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"name": "x"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := exec(t, "run", "-spec", path)
	if code != 1 || !strings.Contains(stderr, "grid:") {
		t.Errorf("bad spec: code %d, stderr %q; want 1 and a grid error", code, stderr)
	}
}
