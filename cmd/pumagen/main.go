// Command pumagen lists the PUMA workload profiles and generates
// synthetic datasets for the real in-process engine examples: text
// corpora, movie-ratings files, edge lists and 2-D point clouds,
// written to stdout.
//
// Usage:
//
//	pumagen -list
//	pumagen -kind text -lines 10000 > corpus.txt
//	pumagen -kind ratings -lines 50000 > ratings.tsv
//	pumagen -kind edges -lines 20000 -vertices 500 > graph.txt
//	pumagen -kind points -lines 10000 -k 4 > points.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"smapreduce/internal/puma"
)

func main() {
	list := flag.Bool("list", false, "list workload profiles and exit")
	kind := flag.String("kind", "text", "dataset kind: text | ratings | edges | points")
	lines := flag.Int("lines", 1000, "lines to generate")
	wordsPerLine := flag.Int("words", 8, "words per line (text)")
	movies := flag.Int("movies", 500, "distinct movies (ratings)")
	vertices := flag.Int("vertices", 200, "vertices (edges)")
	k := flag.Int("k", 4, "cluster centres (points)")
	seed := flag.Uint64("seed", 1, "generator seed")
	flag.Parse()

	if *list {
		fmt.Printf("%-24s %-12s %8s %10s %12s\n", "benchmark", "class", "shuffle", "peak slots", "mapCPU s/MB")
		for _, p := range puma.All() {
			fmt.Printf("%-24s %-12s %8.4f %10.1f %12.3f\n",
				p.Name, p.Class(), p.ShuffleRatio(), p.MapPeakSlots, p.MapCPUPerMB)
		}
		return
	}

	var err error
	switch *kind {
	case "text":
		err = puma.GenText(os.Stdout, *seed, *lines, *wordsPerLine)
	case "ratings":
		err = puma.GenRatings(os.Stdout, *seed, *lines, *movies)
	case "edges":
		err = puma.GenEdges(os.Stdout, *seed, *lines, *vertices)
	case "points":
		err = puma.GenPoints(os.Stdout, *seed, *lines, *k)
	default:
		err = fmt.Errorf("unknown kind %q (text | ratings | edges | points)", *kind)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pumagen:", err)
		os.Exit(1)
	}
}
