// Command localrun executes a named MapReduce job with the real
// in-process engine over a text file (or stdin), writing
// "key<TAB>value" results to stdout. It pairs with pumagen:
//
//	pumagen -kind text -lines 100000 | localrun -job wordcount
//	pumagen -kind ratings -lines 50000 | localrun -job histogram-ratings
//	localrun -job grep -pattern error -in app.log
//	localrun -job sequence-count -in corpus.txt -workers 8
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"smapreduce/internal/localmr"
)

func main() {
	var (
		jobName  = flag.String("job", "wordcount", "job: wordcount | grep | histogram-ratings | sequence-count | adjacency-list | kmeans")
		pattern  = flag.String("pattern", "", "pattern for -job grep")
		kCentres = flag.Int("k", 4, "cluster count for -job kmeans")
		inPath   = flag.String("in", "", "input file (default stdin)")
		workers  = flag.Int("workers", 4, "maximum worker pool size")
		parts    = flag.Int("partitions", 4, "reduce partitions")
		static   = flag.Bool("static", false, "disable the dynamic pool manager")
		poolLog  = flag.Bool("pool-log", false, "print pool manager decisions to stderr")
		showStat = flag.Bool("stats", false, "print execution statistics to stderr")
	)
	flag.Parse()

	var in io.Reader = os.Stdin
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	data, err := io.ReadAll(in)
	if err != nil {
		fatal(err)
	}
	text := string(data)

	if strings.ToLower(*jobName) == "kmeans" {
		pts, err := localmr.ParsePoints(text)
		if err != nil {
			fatal(err)
		}
		res, err := localmr.KMeans(localmr.Config{
			MapWorkers: 2, ReduceWorkers: 2, MaxWorkers: *workers, Partitions: *parts, Dynamic: !*static,
		}, pts, *kCentres, 50, 1e-6)
		if err != nil {
			fatal(err)
		}
		for i, c := range res.Centres {
			fmt.Printf("centre%d\t%.4f,%.4f\n", i, c.X, c.Y)
		}
		if *showStat {
			fmt.Fprintf(os.Stderr, "converged in %d iterations (final shift %.2g)\n", res.Iterations, res.Shift)
		}
		return
	}

	var job localmr.Job
	switch strings.ToLower(*jobName) {
	case "wordcount":
		job = localmr.WordCount(text)
	case "grep":
		if *pattern == "" {
			fatal(fmt.Errorf("-job grep requires -pattern"))
		}
		job = localmr.Grep(text, *pattern)
	case "histogram-ratings":
		job = localmr.HistogramRatings(text)
	case "sequence-count":
		job = localmr.SequenceCount(map[string]string{"stdin": text})
	case "adjacency-list":
		job = localmr.AdjacencyList(text)
	default:
		fatal(fmt.Errorf("unknown job %q", *jobName))
	}

	cfg := localmr.Config{
		MapWorkers:    2,
		ReduceWorkers: 2,
		MaxWorkers:    *workers,
		Partitions:    *parts,
		Dynamic:       !*static,
	}
	if cfg.MapWorkers > cfg.MaxWorkers {
		cfg.MapWorkers = cfg.MaxWorkers
	}
	if cfg.ReduceWorkers > cfg.MaxWorkers {
		cfg.ReduceWorkers = cfg.MaxWorkers
	}

	res, err := localmr.Run(cfg, job)
	if err != nil {
		fatal(err)
	}
	if err := localmr.WriteOutput(os.Stdout, res.Pairs); err != nil {
		fatal(err)
	}
	if *showStat {
		fmt.Fprintf(os.Stderr, "map tasks %d, reduce tasks %d, shuffle records %d, output %d, pool peaks map=%d reduce=%d\n",
			res.Stats.MapTasks, res.Stats.ReduceTasks, res.Stats.Intermediate,
			res.Stats.Output, res.Stats.MapPoolPeak, res.Stats.ReducePoolPeak)
	}
	if *poolLog {
		for _, d := range res.Stats.PoolDecisions {
			fmt.Fprintf(os.Stderr, "pool %s -> %d (%s)\n", d.Stage, d.Workers, d.Reason)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "localrun:", err)
	os.Exit(1)
}
