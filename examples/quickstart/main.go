// Quickstart: run a real WordCount on the in-process MapReduce engine
// with dynamic worker pools, then the same workload shape on the
// simulated 16-node cluster under all three engines.
package main

import (
	"fmt"
	"log"
	"strings"

	smapreduce "smapreduce"
	"smapreduce/internal/localmr"
)

const sample = `the quick brown fox jumps over the lazy dog
the dog barks and the fox runs
map and reduce and shuffle and sort
the slot manager tunes the cluster at runtime`

func main() {
	// --- Part 1: a real MapReduce job, executed locally. -----------------
	cfg := localmr.DefaultConfig()
	res, err := localmr.Run(cfg, localmr.WordCount(strings.Repeat(sample+"\n", 200)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== local wordcount (real execution) ==")
	fmt.Printf("map tasks: %d, reduce tasks: %d, shuffle records: %d\n",
		res.Stats.MapTasks, res.Stats.ReduceTasks, res.Stats.Intermediate)
	fmt.Printf("peak worker pools: map=%d reduce=%d (started at %d/%d)\n",
		res.Stats.MapPoolPeak, res.Stats.ReducePoolPeak, cfg.MapWorkers, cfg.ReduceWorkers)
	fmt.Println("top words:")
	printed := 0
	for _, kv := range res.Pairs {
		if kv.Value >= "400" { // counts are strings; the big ones here are 600+
			fmt.Printf("  %-10s %s\n", kv.Key, kv.Value)
			printed++
		}
	}
	if printed == 0 {
		for _, kv := range res.Pairs[:5] {
			fmt.Printf("  %-10s %s\n", kv.Key, kv.Value)
		}
	}

	// --- Part 2: the same idea at cluster scale, simulated. --------------
	fmt.Println("\n== simulated 16-node cluster, 100 GB wordcount ==")
	fmt.Printf("%-12s %10s %10s %10s\n", "engine", "map s", "reduce s", "exec s")
	for _, engine := range []smapreduce.Engine{smapreduce.HadoopV1, smapreduce.YARN, smapreduce.SMapReduce} {
		r, err := smapreduce.Run(engine, smapreduce.Options{}, smapreduce.Job("wordcount", 100<<10, 30))
		if err != nil {
			log.Fatal(err)
		}
		j := r.Jobs[0]
		fmt.Printf("%-12v %10.1f %10.1f %10.1f\n", engine, j.MapTime(), j.ReduceTime(), j.ExecutionTime())
	}
}
