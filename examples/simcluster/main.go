// Simcluster reproduces the paper's headline comparison interactively:
// one 150 GB HistogramRating job on HadoopV1, YARN and SMapReduce over
// the simulated 16-worker cluster, with per-engine progress milestones.
package main

import (
	"fmt"
	"log"

	smapreduce "smapreduce"
)

func main() {
	const inputGB = 150
	fmt.Printf("HistogramRating, %d GB input, 16 workers, 3 map + 2 reduce initial slots\n\n", inputGB)

	type outcome struct {
		engine smapreduce.Engine
		result *smapreduce.Result
	}
	var outcomes []outcome
	for _, engine := range []smapreduce.Engine{smapreduce.HadoopV1, smapreduce.YARN, smapreduce.SMapReduce} {
		r, err := smapreduce.Run(engine, smapreduce.Options{},
			smapreduce.Job("histogram-ratings", inputGB<<10, 30))
		if err != nil {
			log.Fatal(err)
		}
		outcomes = append(outcomes, outcome{engine, r})
	}

	fmt.Printf("%-12s %10s %10s %10s %12s %14s\n",
		"engine", "map s", "reduce s", "exec s", "MB/s", "t(50% maps) s")
	for _, o := range outcomes {
		j := o.result.Jobs[0]
		fmt.Printf("%-12v %10.1f %10.1f %10.1f %12.1f %14.1f\n",
			o.engine, j.MapTime(), j.ReduceTime(), j.ExecutionTime(), j.ThroughputMBps(),
			j.Progress.Map.CrossingTime(50))
	}

	base := outcomes[0].result.Jobs[0].ThroughputMBps()
	fmt.Println()
	for _, o := range outcomes[1:] {
		gain := o.result.Jobs[0].ThroughputMBps()/base - 1
		fmt.Printf("%v throughput vs HadoopV1: %+.0f%%\n", o.engine, 100*gain)
	}

	smr := outcomes[2].result
	fmt.Printf("\nSMapReduce made %d slot decisions; final targets per node: %d map / %d reduce\n",
		len(smr.Decisions),
		smr.Decisions[len(smr.Decisions)-1].MapTarget,
		smr.Decisions[len(smr.Decisions)-1].ReduceTarget)
}
