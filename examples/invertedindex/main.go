// Invertedindex builds a real inverted index over a small document
// corpus with the in-process engine, demonstrating the dynamic pool
// manager growing the map pool while throughput rises and stopping at
// the point where more workers stop paying off.
package main

import (
	"fmt"
	"log"
	"strings"

	"smapreduce/internal/localmr"
)

func main() {
	// A synthetic corpus: documents with overlapping vocabulary so the
	// posting lists are interesting.
	topics := map[string][]string{
		"scheduling": {"slot", "task", "tracker", "fifo", "capacity", "priority"},
		"storage":    {"block", "replica", "rack", "locality", "namenode"},
		"network":    {"shuffle", "fetch", "bandwidth", "incast", "barrier"},
		"compute":    {"map", "reduce", "combine", "sort", "spill", "thrashing"},
	}
	docs := make(map[string]string)
	i := 0
	for topic, words := range topics {
		for rep := 0; rep < 40; rep++ {
			name := fmt.Sprintf("%s-%03d", topic, rep)
			var b strings.Builder
			for k := 0; k < 30; k++ {
				b.WriteString(words[(rep+k)%len(words)])
				b.WriteByte(' ')
				b.WriteString("cluster runtime data ")
			}
			docs[name] = b.String()
			i++
		}
	}

	cfg := localmr.Config{
		MapWorkers:              1,
		ReduceWorkers:           1,
		MaxWorkers:              8,
		Partitions:              8,
		ChunkSize:               4,
		Dynamic:                 true,
		ManagerTasksPerDecision: 4,
	}
	res, err := localmr.Run(cfg, localmr.InvertedIndex(docs))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("indexed %d documents into %d postings\n", len(docs), len(res.Pairs))
	fmt.Printf("map tasks: %d   pool peak: %d (started at 1)\n", res.Stats.MapTasks, res.Stats.MapPoolPeak)
	fmt.Println("\npool manager decisions:")
	for _, d := range res.Stats.PoolDecisions {
		fmt.Printf("  %-6s → %d workers  (%s)\n", d.Stage, d.Workers, d.Reason)
	}

	fmt.Println("\nselected postings:")
	for _, word := range []string{"incast", "thrashing", "namenode", "cluster"} {
		for _, kv := range res.Pairs {
			if kv.Key == word {
				list := kv.Value
				if len(list) > 60 {
					list = list[:57] + "..."
				}
				fmt.Printf("  %-10s → %s\n", word, list)
				break
			}
		}
	}
}
