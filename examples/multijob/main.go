// Multijob reproduces the paper's shared-cluster experiment (§V-F):
// four identical Grep jobs submitted five seconds apart, compared
// across the three engines by mean execution time and the time the
// last job finishes.
package main

import (
	"fmt"
	"log"

	smapreduce "smapreduce"
)

func main() {
	const (
		jobs    = 4
		gbEach  = 40
		stagger = 5.0
	)
	fmt.Printf("%d Grep jobs × %d GB, submitted %.0f s apart, FIFO scheduling\n\n", jobs, gbEach, stagger)

	fmt.Printf("%-12s %14s %16s\n", "engine", "mean exec s", "last finish s")
	var v1Mean, v1Last float64
	for _, engine := range []smapreduce.Engine{smapreduce.HadoopV1, smapreduce.YARN, smapreduce.SMapReduce} {
		specs := make([]smapreduce.JobSpec, jobs)
		for i := range specs {
			specs[i] = smapreduce.Job("grep", gbEach<<10, 30)
			specs[i].Name = fmt.Sprintf("grep-%d", i+1)
			specs[i].SubmitAt = float64(i) * stagger
		}
		r, err := smapreduce.Run(engine, smapreduce.Options{}, specs...)
		if err != nil {
			log.Fatal(err)
		}
		mean, last := r.MeanExecutionTime(), r.LastFinish()
		if engine == smapreduce.HadoopV1 {
			v1Mean, v1Last = mean, last
			fmt.Printf("%-12v %14.1f %16.1f\n", engine, mean, last)
			continue
		}
		fmt.Printf("%-12v %14.1f %16.1f   (%.0f%% / %.0f%% of HadoopV1)\n",
			engine, mean, last, 100*mean/v1Mean, 100*last/v1Last)
	}

	fmt.Println("\nPer-job timeline on SMapReduce:")
	specs := make([]smapreduce.JobSpec, jobs)
	for i := range specs {
		specs[i] = smapreduce.Job("grep", gbEach<<10, 30)
		specs[i].Name = fmt.Sprintf("grep-%d", i+1)
		specs[i].SubmitAt = float64(i) * stagger
	}
	r, err := smapreduce.Run(smapreduce.SMapReduce, smapreduce.Options{}, specs...)
	if err != nil {
		log.Fatal(err)
	}
	for _, j := range r.Jobs {
		fmt.Printf("  %-8s submitted %5.1f  started %6.1f  barrier %7.1f  finished %7.1f\n",
			j.Spec.Name, j.Submitted, j.Started, j.BarrierAt, j.FinishedAt)
	}
}
