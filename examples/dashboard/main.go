// Dashboard runs one job with the structured event log and utilisation
// recording enabled, then renders a terminal dashboard: progress and
// utilisation sparklines, the event summary, per-job history, and the
// slowest tasks — the observability surface an operator of this system
// would live in.
package main

import (
	"fmt"
	"log"

	"smapreduce/internal/core"
	"smapreduce/internal/metrics"
	"smapreduce/internal/mr"
	"smapreduce/internal/puma"
)

func main() {
	cfg := mr.DefaultConfig()
	cfg.Policy = mr.Dynamic
	c, err := mr.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	mgr := core.MustNewSlotManager(core.SlotManagerConfig{})
	if err := c.SetController(mgr); err != nil {
		log.Fatal(err)
	}
	events := c.EnableEventLog(0)
	util := c.EnableUtilisation()

	jobs, err := c.Run(mr.JobSpec{
		Name:    "inverted-index",
		Profile: puma.MustGet("inverted-index"),
		InputMB: 60 << 10,
		Reduces: 30,
	})
	if err != nil {
		log.Fatal(err)
	}
	j := jobs[0]

	const width = 48
	fmt.Printf("inverted-index, 60 GB, 16 workers under SMapReduce — finished in %.0f s\n\n", j.ExecutionTime())

	fmt.Printf("%-16s %s\n", "progress %", metrics.Sparkline(j.Progress.Total.Points(), width))
	fmt.Printf("%-16s %s  (peak %.0f)\n", "running maps",
		metrics.Sparkline(util.RunningMaps.Points(), width), util.RunningMaps.MaxV())
	fmt.Printf("%-16s %s  (peak %.0f)\n", "running reduces",
		metrics.Sparkline(util.RunningReduces.Points(), width), util.RunningReduces.MaxV())
	fmt.Printf("%-16s %s  (peak %.0f MB/s)\n", "map input rate",
		metrics.Sparkline(util.MapInputMBps.Points(), width), util.MapInputMBps.MaxV())
	fmt.Printf("%-16s %s  (peak %.0f MB/s)\n", "shuffle rate",
		metrics.Sparkline(util.ShuffleMBps.Points(), width), util.ShuffleMBps.MaxV())

	fmt.Println("\nslot manager decisions:")
	for _, d := range mgr.Decisions() {
		fmt.Printf("  [%7.1f] maps=%d reduces=%d  %s\n", d.At, d.MapTarget, d.ReduceTarget, d.Reason)
	}

	fmt.Println("\njob history:")
	fmt.Print(j.Report(c).String())

	fmt.Println("latest-starting tasks (the stragglers):")
	for _, task := range j.Report(c).SlowestTasks(3) {
		fmt.Printf("  %s/%d on tracker %d, started %.1f s\n", task.Type, task.ID, task.Tracker, task.StartedAt)
	}

	fmt.Printf("\nevent log: %d events (", len(events.Events()))
	for i, kind := range []mr.EventKind{mr.EvTaskStarted, mr.EvTaskDone, mr.EvSlotChange} {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%s ×%d", kind, len(events.Filter(kind)))
	}
	fmt.Println(")")
}
