// Dynamicslots traces the slot manager's reasoning on two contrasting
// workloads — a map-heavy scan (grep) and a reduce-heavy sort
// (terasort) — showing the balance factor, the thrashing detector and
// the tail-stretch conversion at work.
package main

import (
	"fmt"
	"log"

	smapreduce "smapreduce"
)

func run(bench string, inputGB float64) {
	fmt.Printf("== %s, %.0f GB ==\n", bench, inputGB)
	r, err := smapreduce.Run(smapreduce.SMapReduce, smapreduce.Options{},
		smapreduce.Job(bench, inputGB*1024, 30))
	if err != nil {
		log.Fatal(err)
	}
	j := r.Jobs[0]
	fmt.Printf("map %.1f s, reduce %.1f s, exec %.1f s\n", j.MapTime(), j.ReduceTime(), j.ExecutionTime())
	fmt.Println("decision log:")
	for _, d := range r.Decisions {
		fmt.Printf("  %s\n", d)
	}
	fmt.Println()
}

func main() {
	fmt.Println("SMapReduce slot manager decision traces")
	fmt.Println("f = Rs/Rm: >upper bound → map-heavy (grow maps); <lower → reduce-heavy (shrink)")
	fmt.Println()
	run("grep", 100)     // map-heavy: expect a climb toward the thrashing point
	run("terasort", 100) // reduce-heavy: expect balance to hold near the start config
}
