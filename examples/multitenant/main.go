// Multitenant pits the capacity policies against plain HadoopV1 slots
// on an open arrival process: an SLO-bound analytics tenant, a heavy
// ETL tenant and an always-on service stream compete for one cluster
// while jobs keep arriving. The interesting column is the analytics
// tenant's SLO misses — a capacity policy exists to keep that number
// low without idling the cluster.
package main

import (
	"fmt"
	"log"

	smapreduce "smapreduce"
	"smapreduce/internal/arrival"
	"smapreduce/internal/policy"
)

func main() {
	const seed = 7
	arrCfg := arrival.Config{
		Horizon:    1800,
		LoadFactor: 12, // far past saturation: the policies must arbitrate
		Tenants: []arrival.Tenant{
			{Name: "analytics", Benchmarks: []string{"grep", "histogram-ratings"},
				MeanInterarrival: 120, InputMBMin: 2048, InputMBMax: 6144,
				Reduces: 16, SLOSeconds: 600},
			{Name: "etl", Benchmarks: []string{"terasort", "inverted-index"},
				MeanInterarrival: 300, InputMBMin: 8192, InputMBMax: 12288,
				Reduces: 16},
			{Name: "service", Benchmarks: []string{"wordcount"},
				MeanInterarrival: 240, InputMBMin: 1024, InputMBMax: 1024,
				Reduces: 8, Service: true},
		},
	}
	tenants := []policy.Tenant{
		{Name: "analytics", Weight: 2, Guarantee: 0.3},
		{Name: "etl", Weight: 1, Guarantee: 0.4},
		{Name: "service", Weight: 1, Guarantee: 0.2},
	}

	fmt.Println("open arrivals, 1800 s horizon, load 12x, seed", seed)
	fmt.Printf("\n%-14s %6s %12s %10s %10s %10s\n",
		"engine", "jobs", "makespan s", "p50 s", "p99 s", "SLO miss")
	engines := []smapreduce.Engine{
		smapreduce.HadoopV1, smapreduce.FairShare,
		smapreduce.CapacityQueue, smapreduce.GameTheoretic,
	}
	for _, engine := range engines {
		cluster := smapreduce.DefaultCluster()
		cluster.Seed = seed
		// Every engine replays the identical stream: arrivals are a pure
		// function of the cluster seed, never of the engine under test.
		src, err := arrival.New(arrCfg, arrival.RNG(cluster.Seed))
		if err != nil {
			log.Fatal(err)
		}
		res, err := smapreduce.Run(engine, smapreduce.Options{
			Cluster:  cluster,
			Arrivals: src,
			Tenants:  tenants,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14v %6d %12.1f %10.1f %10.1f %10d\n",
			engine, len(res.Jobs), res.LastFinish(),
			res.LatencyPercentile(50), res.LatencyPercentile(99), res.SLOMisses())
	}
}
