// Failover demonstrates the runtime's fault tolerance, driven by a
// declarative chaos schedule (internal/chaos): a terasort runs on 8
// workers while a tracker dies mid-shuffle and later rejoins, another
// tracker loses heartbeats long enough to be blacklisted, and one node
// runs degraded for a while — and the job still completes, at a visible
// but bounded cost versus the clean run.
//
// The same schedule runs from the CLI:
//
//	go run ./cmd/smrsim -bench terasort -input-gb 16 -workers 8 \
//	    -chaos 'crash tt5 @45; rejoin tt5 @110; hbloss tt2 @20 for 6; slow node3 @15 for 40 cpu 0.5 disk 0.5'
package main

import (
	"fmt"
	"log"

	"smapreduce/internal/chaos"
	"smapreduce/internal/mr"
	"smapreduce/internal/puma"
)

// The fault plan, in the chaos schedule text format. Faults land at
// fixed virtual instants; the clean 16 GB run reaches its map/reduce
// barrier around t=75 s, so the crash at t=45 hits mid-map while the
// shuffle is already overlapping, and the rejoin at t=110 arrives
// during the reduce phase, in time for the tracker to win work back.
const plan = `
# tracker 5 dies mid-shuffle; its running tasks are requeued and its
# lost map outputs re-execute. It rejoins during the reduce phase.
crash  tt5 @45
rejoin tt5 @110

# tracker 2 goes silent for 6 s: blacklisted after 3 s without a
# heartbeat, restored when the beats resume, then held on probation.
hbloss tt2 @20 for 6

# node 3 runs at half speed for 40 s (say, a failing disk controller).
slow node3 @15 for 40 cpu 0.5 disk 0.5
`

func run(sched *chaos.Schedule) (*mr.Job, *mr.EventLog) {
	cfg := mr.DefaultConfig()
	cfg.Workers = 8
	cfg.Net.Nodes = 8
	c, err := mr.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	logged := c.EnableEventLog(0)
	if sched != nil {
		if err := sched.Apply(c); err != nil {
			log.Fatal(err)
		}
	}
	jobs, err := c.Run(mr.JobSpec{
		Name:    "terasort",
		Profile: puma.MustGet("terasort"),
		InputMB: 16 * 1024,
		Reduces: 16,
	})
	if err != nil {
		log.Fatal(err)
	}
	return jobs[0], logged
}

func main() {
	fmt.Println("== clean run (8 workers, 16 GB terasort) ==")
	clean, _ := run(nil)
	fmt.Printf("barrier %.1f s, finished %.1f s\n\n", clean.BarrierAt, clean.FinishedAt)

	sched, err := chaos.ParseSchedule(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== same run under a %d-fault chaos schedule ==\n%s\n", len(sched.Faults), sched)
	faulty, logged := run(&sched)

	fmt.Println("fault timeline (from the event log):")
	for _, ev := range logged.Events() {
		switch ev.Kind {
		case mr.EvTrackerDown, mr.EvTrackerRejoin, mr.EvRequeued,
			mr.EvTrackerHBLost, mr.EvTrackerBlacklisted, mr.EvTrackerHBRestored,
			mr.EvTrackerProbation, mr.EvTrackerCleared,
			mr.EvNodeDegraded, mr.EvNodeRestored:
			who := "-"
			if ev.Tracker >= 0 {
				who = fmt.Sprintf("tt%d", ev.Tracker)
			}
			fmt.Printf("  t=%7.2f  %-4s %-20s %s\n", ev.At, who, ev.Kind, ev.Detail)
		}
	}

	fmt.Printf("\nbarrier %.1f s, finished %.1f s\n", faulty.BarrierAt, faulty.FinishedAt)
	fmt.Printf("recovery cost: +%.1f s (%.0f%%) — tasks requeued, lost map outputs re-executed\n",
		faulty.FinishedAt-clean.FinishedAt,
		100*(faulty.FinishedAt/clean.FinishedAt-1))
}
