// Failover demonstrates the runtime's fault tolerance: a terasort runs
// on 8 workers, one tracker dies mid-shuffle, its running tasks are
// requeued and its lost map outputs re-execute — and the job still
// completes, at a visible but bounded cost versus the clean run.
package main

import (
	"fmt"
	"log"

	"smapreduce/internal/core"
	"smapreduce/internal/mr"
	"smapreduce/internal/puma"
)

func run(failAt float64) []*mr.Job {
	cfg := mr.DefaultConfig()
	cfg.Workers = 8
	cfg.Net.Nodes = 8
	c, err := mr.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if failAt > 0 {
		c.Trace = func(format string, args ...any) {
			fmt.Printf("  trace: "+format+"\n", args...)
		}
		c.ScheduleFailure(5, failAt)
	}
	jobs, err := c.Run(mr.JobSpec{
		Name:    "terasort",
		Profile: puma.MustGet("terasort"),
		InputMB: 16 * 1024,
		Reduces: 16,
	})
	if err != nil {
		log.Fatal(err)
	}
	return jobs
}

func main() {
	fmt.Println("== clean run (8 workers, 16 GB terasort) ==")
	clean := run(0)[0]
	fmt.Printf("barrier %.1f s, finished %.1f s\n\n", clean.BarrierAt, clean.FinishedAt)

	failAt := clean.BarrierAt * 0.6
	fmt.Printf("== same run, tracker 5 dies at t=%.0f s (mid-shuffle) ==\n", failAt)
	failed := run(failAt)[0]
	fmt.Printf("\nbarrier %.1f s, finished %.1f s\n", failed.BarrierAt, failed.FinishedAt)
	fmt.Printf("recovery cost: +%.1f s (%.0f%%) — tasks requeued, lost map outputs re-executed\n",
		failed.FinishedAt-clean.FinishedAt,
		100*(failed.FinishedAt/clean.FinishedAt-1))

	_ = core.EngineHadoopV1 // the runtime-level API is engine-agnostic
}
