# Developer entry points. The tier-1 gate the CI (and the next PR's
# baseline) runs is `make check`: build, vet, full test suite.

GO ?= go

.PHONY: all build test check vet race invariants cover bench-smoke bench-fluid bench-alloc bench-clock bench-fleet bench-tenant trace-smoke serve-smoke grid-smoke clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# check is the tier-1 flow: everything must stay green.
check: build vet test

# race runs the runtime-heavy internal packages under the race
# detector; the figure matrices are too slow for -race, the internals
# are where the concurrency lives.
race:
	$(GO) test -race ./internal/...

# invariants runs the tier-1 suite with runtime invariant checking
# forced on. Test binaries already self-enable it; the env var also
# covers code paths that shell out or rebuild clusters outside tests.
invariants:
	SMR_INVARIANTS=1 $(GO) test ./...

# cover measures per-package statement coverage (-short: the chaos
# soak runs its reduced seed set) and gates it against the checked-in
# floors in COVERAGE.floors via cmd/covercheck.
cover:
	$(GO) test -short -coverprofile=cover.out ./...
	$(GO) run ./cmd/covercheck -profile cover.out -floors COVERAGE.floors

# bench-smoke proves the benchmark harness still runs end to end
# (single iteration of a mid-weight figure), not a measurement.
bench-smoke:
	$(GO) test -run '^$$' -bench Figure4 -benchtime 1x .

# bench-fluid regenerates BENCH_fluid.json (baseline vs incremental
# fluid-rate resolver timings).
bench-fluid:
	$(GO) run ./cmd/smrbench -benchjson

# bench-alloc regenerates BENCH_alloc.json (allocs/op, bytes/op and GC
# cycles of the figure macro-runs against the pre-pooling baselines,
# plus the pooled-vs-unpooled netsim churn loop), and runs the zero-
# alloc AllocsPerRun guards in short mode as a quick gate first.
bench-alloc:
	$(GO) test -short -run 'ZeroAlloc|AllocFree' ./internal/sim/ ./internal/netsim/ ./internal/mr/
	$(GO) run ./cmd/smrbench -memjson

# bench-clock regenerates BENCH_clock.json (timing wheel vs heap-only
# event scheduler: periodic-beat and churn microbenchmarks plus figure
# and fleet macro-runs, both backends measured live), after running the
# wheel-vs-heap differential pins as a gate.
bench-clock:
	$(GO) test -run 'WheelVsHeapSchedDifferential|SchedDiffSeeded' ./internal/mr/ ./internal/sim/
	$(GO) run ./cmd/smrbench -clockjson

# bench-fleet regenerates BENCH_fleet.json (the fleet runner's
# 1→GOMAXPROCS scaling curve over a 256-cluster fleet: runs/sec,
# speedup and parallel efficiency per worker count), after running the
# fleet determinism pin as a gate. The curve is machine-dependent —
# efficiency is only meaningful up to the runner's core count.
bench-fleet:
	$(GO) test -run 'FleetDeterminism' ./internal/fleet/
	$(GO) run ./cmd/smrbench -fleetjson

# bench-tenant regenerates BENCH_tenant.json (the multi-tenant
# capacity-policy shoot-out: every engine replays identical open
# arrival streams at three offered loads), after pinning open-arrival
# determinism across fleet worker counts as a gate.
bench-tenant:
	$(GO) test -run 'FleetDeterminismOpenArrivals|ShootoutDeterministic' ./internal/fleet/ ./internal/experiments/
	$(GO) run ./cmd/smrbench -tenantjson

# trace-smoke proves the observability pipeline end to end: a traced
# default run must produce a valid Chrome trace (tracecheck) and a
# telemetry CSV.
trace-smoke:
	$(GO) run ./cmd/smrsim -bench terasort -input-gb 10 \
		-trace trace-smoke.json -telemetry trace-smoke.csv -explain
	$(GO) run ./cmd/tracecheck trace-smoke.json
	head -1 trace-smoke.csv

# grid-smoke proves the experiment-grid harness end to end: sweep the
# checked-in CI smoke grid (engines × workloads × scales × seeds) into
# grid-smoke-out/ and re-validate the resulting CSV and artifacts
# against the spec with the validate subcommand.
grid-smoke:
	rm -rf grid-smoke-out
	$(GO) run ./cmd/smrgrid run -spec experiments/smoke.json -out grid-smoke-out
	$(GO) run ./cmd/smrgrid validate -out grid-smoke-out

# serve-smoke proves the simulation service end to end: boot on an
# ephemeral port, submit a scenario over HTTP, watch the SSE stream to
# its terminal `done` event, check artifact determinism across a
# resubmission, drain gracefully, and verify the persisted run ledger
# offline with ledgercheck.
serve-smoke:
	./scripts/serve_smoke.sh serve-smoke-out

clean:
	rm -f smapreduce.test mr.test netsim.test
	rm -f trace-smoke.json trace-smoke.csv cover.out
	rm -rf serve-smoke-out grid-smoke-out
