module smapreduce

go 1.22
