// Benchmarks regenerating every figure of the paper's evaluation plus
// the headline single-run comparisons. One benchmark per figure:
//
//	go test -bench=. -benchmem
//
// Each iteration performs the figure's full workload matrix on the
// simulated 16-worker cluster, so ns/op is the wall cost of
// regenerating that figure (the virtual cluster time is orders of
// magnitude larger).
package smapreduce_test

import (
	"testing"

	smapreduce "smapreduce"
	"smapreduce/internal/experiments"
)

// benchCfg runs the figures at half the paper's input scale: identical
// shapes, roughly half the wall time per iteration.
func benchCfg() experiments.Config {
	cfg := experiments.Default()
	cfg.Scale = 0.5
	return cfg
}

// skipIfShort guards the benchmarks whose single iteration exceeds
// ~100 ms of wall time, so `go test -short -bench .` stays a quick
// smoke pass (the lighter figures and SingleJob still run).
func skipIfShort(b *testing.B) {
	b.Helper()
	if testing.Short() {
		b.Skip("heavy figure benchmark; skipped with -short")
	}
}

func BenchmarkFigure1Thrashing(b *testing.B) {
	skipIfShort(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure1(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3ExecTime(b *testing.B) {
	skipIfShort(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4Progress(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure4(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5SlotSweep(b *testing.B) {
	skipIfShort(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure5(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6InputScaling(b *testing.B) {
	skipIfShort(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure6(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7Ablation(b *testing.B) {
	skipIfShort(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure7(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8MultiGrep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure8(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure9MultiInvIdx(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure9(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSingleJob measures one 50 GB HistogramRating run per engine —
// the unit of work every figure is built from.
func BenchmarkSingleJob(b *testing.B) {
	for _, engine := range []smapreduce.Engine{smapreduce.HadoopV1, smapreduce.YARN, smapreduce.SMapReduce} {
		engine := engine
		b.Run(engine.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := smapreduce.Run(engine, smapreduce.Options{},
					smapreduce.Job("histogram-ratings", 50<<10, 30)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation and extension benches (DESIGN.md §7).

func BenchmarkAblationBounds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationBounds(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSlowStart(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationSlowStart(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationConfirmations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationConfirmations(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationLazyVsEager(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationLazyVsEager(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationTailBoost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationTailBoost(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeterogeneousCluster(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Heterogeneous(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSchedulers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Schedulers(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpeculation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Speculation(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOversubscription(b *testing.B) {
	skipIfShort(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Oversubscription(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOracleGap(b *testing.B) {
	skipIfShort(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.OracleGap(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkControllerComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ControllerComparison(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSkewSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SkewSensitivity(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceWorkload(b *testing.B) {
	skipIfShort(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TraceWorkload(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}
